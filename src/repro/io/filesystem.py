"""Filesystem time models for the at-scale I/O simulations.

Bandwidth specifications live on
:class:`repro.machine.topology.FilesystemSpec` (GPFS/Alpine at 2.5 TB/s
for Summit, Lustre/Orion at 9.4 TB/s for Frontier — the paper's quoted
peaks).  This module adds the time model used by Figs. 17/18: with N
aggregating writers, each sustains an equal share of the effective
bandwidth, plus a per-operation latency floor (metadata, file opens).
"""

from __future__ import annotations

from repro.machine.topology import FilesystemSpec, SystemSpec

#: fixed per-collective-operation cost (opens, metadata, barriers).
IO_LATENCY_S = 0.25


def effective_bandwidth(fs: FilesystemSpec, writers: int) -> float:
    """Aggregate bytes/s achievable by ``writers`` concurrent writers."""
    return fs.effective_bandwidth(writers)


def io_time(fs: FilesystemSpec, total_bytes: float, writers: int,
            latency: float = IO_LATENCY_S) -> float:
    """Seconds to collectively write/read ``total_bytes``."""
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if total_bytes == 0:
        return latency
    return latency + total_bytes / effective_bandwidth(fs, writers)


def system_io_time(system: SystemSpec, nodes: int, total_bytes: float) -> float:
    """I/O time with the system's tuned aggregation strategy."""
    return io_time(system.filesystem, total_bytes, system.writers(nodes))
