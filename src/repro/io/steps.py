"""Step-based I/O (ADIOS2's begin_step/end_step model).

Scientific applications write *time steps*: every iteration opens a
step, puts its variables, and closes the step.  This wrapper gives the
BP engine that shape — each step is an isolated namespace, readers
iterate steps in order or access one at random — matching how the
paper's I/O evaluation drives ADIOS2 (each GPU compresses N time steps
of NYX data).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.io.engine import BPReader, BPWriter
from repro.trace.tracer import Span, TRACER as _TRACER


class StepWriter:
    """Step-scoped writer over :class:`BPWriter`.

    Usage::

        w = StepWriter(path, num_aggregators=2)
        for step in range(n):
            with w.step() as s:
                s.put("density", field, rank=rank, operator="mgard-x",
                      compressor=...)
        stats = w.close()
    """

    def __init__(self, path, num_aggregators: int = 1) -> None:
        self._writer = BPWriter(path, num_aggregators=num_aggregators)
        self._current: _Step | None = None
        self.num_steps = 0

    def step(self) -> "_Step":
        if self._current is not None:
            raise RuntimeError("previous step not closed")
        self._current = _Step(self, self.num_steps)
        return self._current

    def _end_step(self) -> None:
        self._current = None
        self.num_steps += 1

    def close(self) -> dict:
        if self._current is not None:
            raise RuntimeError("close the open step before closing the writer")
        stats = self._writer.close()
        stats["steps"] = self.num_steps
        return stats


class _Step:
    """One open step; context manager so a step cannot be left dangling."""

    def __init__(self, owner: StepWriter, index: int) -> None:
        self._owner = owner
        self.index = index
        self._span = None

    def put(self, name: str, data: np.ndarray, rank: int = 0,
            operator: str = "none", compressor=None) -> None:
        self._owner._writer.put(
            f"step{self.index}/{name}", data, rank=rank,
            operator=operator, compressor=compressor,
        )

    def __enter__(self) -> "_Step":
        # One span per open step, so traced runs show step boundaries
        # around the io.put spans they contain.
        if _TRACER.enabled:
            self._span = Span(
                _TRACER, "io.step", "io", {"step": self.index}
            ).__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None
        if exc_type is None:
            self._owner._end_step()
        else:
            # Abandon the step on error so the writer stays usable.
            self._owner._current = None


class StepReader:
    """Step-aware reader."""

    def __init__(self, path) -> None:
        self._reader = BPReader(path)
        self._steps = self._discover()

    def _discover(self) -> int:
        steps = set()
        for key in self._reader.variables():
            name = key.split("@")[0]
            if name.startswith("step") and "/" in name:
                try:
                    steps.add(int(name.split("/")[0][4:]))
                except ValueError:
                    continue
        return max(steps) + 1 if steps else 0

    @property
    def num_steps(self) -> int:
        return self._steps

    def get(self, step: int, name: str, rank: int = 0, compressor=None,
            selection=None) -> np.ndarray:
        if not 0 <= step < self._steps:
            raise IndexError(f"step {step} out of range [0, {self._steps})")
        return self._reader.get(
            f"step{step}/{name}", rank=rank, compressor=compressor,
            selection=selection,
        )

    def iter_steps(self, name: str, rank: int = 0, compressor=None
                   ) -> Iterator[np.ndarray]:
        for step in range(self._steps):
            yield self.get(step, name, rank=rank, compressor=compressor)
