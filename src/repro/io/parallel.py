"""Multi-node reduction and parallel-I/O simulations (Figs. 15-18).

Weak scaling is exploited structurally: every node runs the identical
workload, so one node is simulated in full (its GPUs genuinely share a
runtime, contending on allocations when context caching is off) and the
aggregate is the node count times the node throughput, while the
filesystem is shared — its effective bandwidth model spans all writers.

The compression *ratios* fed into these simulations come from really
compressing the synthetic datasets; only time is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.adaptive import AdaptiveConfig, adaptive_schedule
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.io.filesystem import io_time
from repro.machine.device import SimDevice
from repro.machine.engine import Simulator
from repro.machine.runtime import SharedRuntime
from repro.machine.topology import SystemSpec


@dataclass(frozen=True)
class ReductionAtScale:
    """One reduction method's runtime configuration for scale studies."""

    kernel: str                    # perf-model key, e.g. "mgard-x"
    ratio: float                   # measured compression ratio
    error_bound: float | None = 1e-2
    overlapped: bool = True        # Fig. 9 pipeline on/off
    context_cached: bool = True    # CMM on/off
    chunk_bytes: int = 500_000_000 # per reduction call (legacy pipelines)
    allocs_per_call: int = 4       # runtime allocations per call (no CMM)
    call_overhead_s: float = 0.0   # fixed host-side cost per call
    label: str = ""

    @property
    def name(self) -> str:
        return self.label or self.kernel


def node_reduction_time(
    system: SystemSpec,
    method: ReductionAtScale,
    bytes_per_gpu: int,
    num_gpus: int | None = None,
    decompress: bool = False,
    chunk_bytes_override: int | None = None,
) -> float:
    """Simulated seconds for one node to reduce its GPUs' data.

    All GPUs share the node runtime; when the method does per-call
    allocations they serialize there — the scalability mechanism of
    Fig. 16.
    """
    from repro.perf.models import kernel_model

    gpus = num_gpus if num_gpus is not None else system.node.gpus_per_node
    if gpus < 1:
        raise ValueError("need at least one GPU")
    spec = system.node.gpus[0]
    model = kernel_model(method.kernel, spec, method.error_bound, decompress=decompress)

    sim = Simulator()
    runtime = SharedRuntime(sim, name=f"{system.name}.rt")
    devices = [SimDevice(sim, spec, runtime=runtime, index=i) for i in range(gpus)]

    # Submit every device's pipeline onto the shared simulator, then run
    # the global schedule once: allocation tasks from all devices
    # serialize on the shared runtime lock, compute/DMA stay per-device.
    for dev in devices:
        if method.overlapped:
            sizes = adaptive_schedule(bytes_per_gpu, model, ratio=method.ratio)
        else:
            # Legacy tools reduce call-by-call; strong-scaling runs on
            # time-stepped data shrink the per-call volume with node
            # count (the occupancy cliff behind Fig. 18's overheads).
            chunk = chunk_bytes_override or method.chunk_bytes
            sizes = chunk_sizes_for(bytes_per_gpu, chunk)
        pipe = ReductionPipeline(
            dev,
            model,
            overlapped=method.overlapped,
            context_cached=method.context_cached,
            allocs_per_call=method.allocs_per_call,
            call_overhead_s=method.call_overhead_s,
        )
        if decompress:
            pipe.build_reconstruction(sizes, ratio=method.ratio)
        else:
            pipe.build_compression(sizes, ratio=method.ratio)
    trace = sim.run()
    return trace.makespan


def aggregate_reduction(
    system: SystemSpec,
    nodes: int,
    method: ReductionAtScale,
    bytes_per_gpu: int,
    decompress: bool = False,
) -> float:
    """Weak-scaling aggregate reduction throughput (bytes/s), Fig. 15."""
    t_node = node_reduction_time(system, method, bytes_per_gpu, decompress=decompress)
    node_bytes = bytes_per_gpu * system.node.gpus_per_node
    return nodes * node_bytes / t_node


@dataclass
class IOResult:
    """Write/read costs of one configuration at one scale."""

    method: str
    nodes: int
    raw_bytes: int
    reduced_bytes: int
    write_time: float
    read_time: float
    write_time_raw: float
    read_time_raw: float

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.reduced_bytes if self.reduced_bytes else float("inf")

    @property
    def write_speedup(self) -> float:
        return self.write_time_raw / self.write_time

    @property
    def read_speedup(self) -> float:
        return self.read_time_raw / self.read_time


def _io_result(
    system: SystemSpec,
    nodes: int,
    method: ReductionAtScale,
    bytes_per_gpu: int,
    chunk_bytes_override: int | None = None,
) -> IOResult:
    gpus = system.node.gpus_per_node
    raw_total = bytes_per_gpu * gpus * nodes
    reduced_total = int(raw_total / method.ratio)
    writers = system.writers(nodes)
    fs = system.filesystem

    t_reduce = node_reduction_time(
        system, method, bytes_per_gpu, chunk_bytes_override=chunk_bytes_override
    )
    t_recon = node_reduction_time(
        system, method, bytes_per_gpu, decompress=True,
        chunk_bytes_override=chunk_bytes_override,
    )

    write_time = t_reduce + io_time(fs, reduced_total, writers)
    read_time = io_time(fs, reduced_total, writers) + t_recon
    write_raw = io_time(fs, raw_total, writers)
    read_raw = io_time(fs, raw_total, writers)
    return IOResult(
        method=method.name,
        nodes=nodes,
        raw_bytes=raw_total,
        reduced_bytes=reduced_total,
        write_time=write_time,
        read_time=read_time,
        write_time_raw=write_raw,
        read_time_raw=read_raw,
    )


def weak_scaling_io(
    system: SystemSpec,
    node_counts: list[int],
    method: ReductionAtScale,
    bytes_per_gpu: int = 7_500_000_000,
) -> list[IOResult]:
    """Fig. 17: per-GPU volume fixed, node count swept."""
    return [_io_result(system, n, method, bytes_per_gpu) for n in node_counts]


def strong_scaling_io(
    system: SystemSpec,
    node_counts: list[int],
    method: ReductionAtScale,
    total_bytes: int,
    steps_per_gpu: int | None = None,
) -> list[IOResult]:
    """Fig. 18: total volume fixed, node count swept.

    ``steps_per_gpu`` models time-stepped campaign data (E3SM/XGC):
    legacy tools must reduce each step with a separate call, so the
    per-call volume shrinks with node count, sliding non-pipelined
    tools down the occupancy ramp; HPDR's adaptive pipeline streams
    across steps and is unaffected.
    """
    out = []
    for n in node_counts:
        per_gpu = max(1, total_bytes // (n * system.node.gpus_per_node))
        override = None
        if steps_per_gpu and not method.overlapped:
            override = max(1, per_gpu // steps_per_gpu)
        out.append(_io_result(system, n, method, per_gpu, override))
    return out
