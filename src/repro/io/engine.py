"""Writer/Reader engines with rank aggregation.

Mirrors ADIOS2's BP5 sub-file layout: N ranks contribute variables; an
aggregation strategy groups ranks onto aggregator subfiles (one writer
per node on Summit, one per GPU on Frontier — the per-system tuning the
paper mentions), plus a small index file mapping variables to subfiles.
All real bytes on a real filesystem, so round-trip tests are genuine.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.io.bp import BPFile
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER
from repro.util import atomic_write_json


def _span(name: str, **args):
    """I/O step span (shared NULL_SPAN when tracing is off)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "io", args)


class BPWriter:
    """Aggregating writer: ``put`` from any rank, ``close`` to flush.

    Parameters
    ----------
    path:
        Output directory (created; BP5-style ``data.N`` subfiles plus
        ``index.json``).
    num_aggregators:
        Subfile count.  Ranks map round-robin onto aggregators.
    """

    def __init__(self, path, num_aggregators: int = 1) -> None:
        if num_aggregators < 1:
            raise ValueError("need at least one aggregator")
        self.path = Path(path)
        self.num_aggregators = num_aggregators
        self._files = [BPFile() for _ in range(num_aggregators)]
        self._index: dict[str, dict] = {}
        self._closed = False

    def _agg_of(self, rank: int) -> int:
        return rank % self.num_aggregators

    def put(
        self,
        name: str,
        data: np.ndarray,
        rank: int = 0,
        operator: str = "none",
        compressor=None,
    ) -> None:
        if self._closed:
            raise RuntimeError("writer already closed")
        key = f"{name}@{rank}"
        agg = self._agg_of(rank)
        with _span("io.put", var=name, rank=rank, nbytes=int(data.nbytes),
                   operator=operator):
            self._files[agg].put(
                key, data, operator=operator, compressor=compressor
            )
        self._index[key] = {"subfile": agg, "rank": rank, "name": name}

    def put_reduced(
        self, name: str, payload: bytes, shape, dtype, operator: str, rank: int = 0
    ) -> None:
        if self._closed:
            raise RuntimeError("writer already closed")
        key = f"{name}@{rank}"
        agg = self._agg_of(rank)
        with _span("io.put_reduced", var=name, rank=rank,
                   nbytes=len(payload), operator=operator):
            self._files[agg].put_reduced(key, payload, shape, dtype, operator)
        self._index[key] = {"subfile": agg, "rank": rank, "name": name}

    def stored_crc(self, name: str, rank: int = 0) -> int:
        """CRC32 of the payload currently held for ``name`` @ ``rank``.

        Read-back verification hook for resilient write paths: compare
        against the CRC of the payload you handed to :meth:`put_reduced`
        to detect corruption introduced in transit.
        """
        key = f"{name}@{rank}"
        entry = self._index.get(key)
        if entry is None:
            raise KeyError(f"no variable {key!r} buffered")
        return self._files[entry["subfile"]].variables[key].crc

    def close(self) -> dict:
        """Flush subfiles + index; returns size statistics."""
        if self._closed:
            raise RuntimeError("writer already closed")
        self.path.mkdir(parents=True, exist_ok=True)
        stored = 0
        # Pin each payload's byte span inside its subfile so readers can
        # fetch one variable with a single ranged read (progressive
        # retrieval never loads subfile bytes it does not need).
        for i, bp in enumerate(self._files):
            for key, span in bp.payload_spans().items():
                self._index[key]["span"] = list(span)
        with _span("io.flush", subfiles=self.num_aggregators):
            # Subfiles first, index last, each via fsync-and-rename: the
            # index only ever names subfiles that were durably written,
            # and a kill mid-flush leaves no torn file behind.
            for i, bp in enumerate(self._files):
                stored += bp.save(self.path / f"data.{i}")
            atomic_write_json(
                self.path / "index.json",
                {"aggregators": self.num_aggregators, "variables": self._index},
            )
        self._closed = True
        original = sum(bp.original_bytes for bp in self._files)
        if _TRACER.enabled:
            _METRICS.counter(
                "hpdr_io_stored_bytes_total", "bytes flushed to BP subfiles"
            ).inc(stored)
            _METRICS.counter(
                "hpdr_io_original_bytes_total", "pre-reduction bytes written"
            ).inc(original)
        return {
            "stored_bytes": stored,
            "original_bytes": original,
            "subfiles": self.num_aggregators,
        }


class BPReader:
    """Reader over a :class:`BPWriter` output directory."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        index_path = self.path / "index.json"
        if not index_path.exists():
            raise FileNotFoundError(f"no BP index at {index_path}")
        with open(index_path) as f:
            self._index = json.load(f)
        self._subfiles: dict[int, BPFile] = {}

    def _subfile(self, i: int) -> BPFile:
        if i not in self._subfiles:
            self._subfiles[i] = BPFile.load(self.path / f"data.{i}")
        return self._subfiles[i]

    def variables(self) -> list[str]:
        return sorted(self._index["variables"])

    def get(
        self,
        name: str,
        rank: int = 0,
        compressor=None,
        selection: tuple[slice, ...] | None = None,
    ) -> np.ndarray:
        """Read a variable; ``selection`` reads a hyperslab.

        For reduced variables the payload is reconstructed first and
        then sliced (block-granular partial decode is the refactoring
        path — see :class:`repro.compressors.mgard.refactor`).
        """
        key = f"{name}@{rank}"
        entry = self._index["variables"].get(key)
        if entry is None:
            raise KeyError(f"no variable {key!r} in {self.path}")
        with _span("io.get", var=name, rank=rank) as sp:
            data = self._subfile(entry["subfile"]).get(key, compressor=compressor)
            sp.set(nbytes=int(data.nbytes))
        if selection is None:
            return data
        if len(selection) > data.ndim:
            raise ValueError(
                f"selection rank {len(selection)} > variable rank {data.ndim}"
            )
        return np.ascontiguousarray(data[selection])

    def read_payload(self, name: str, rank: int = 0) -> bytes:
        """Read one variable's raw payload with a ranged subfile read.

        Uses the byte span the writer pinned in ``index.json`` —
        seek + read of exactly the payload's bytes, no whole-subfile
        load and no operator inversion.  Stores written before spans
        existed fall back to the cached full-subfile path.  This is the
        fetch primitive progressive retrieval builds on: a bounded
        request touches only the byte ranges its segment plan names.
        """
        key = f"{name}@{rank}"
        entry = self._index["variables"].get(key)
        if entry is None:
            raise KeyError(f"no variable {key!r} in {self.path}")
        span = entry.get("span")
        if span is None:
            return bytes(self._subfile(entry["subfile"]).variables[key].payload)
        offset, nbytes = int(span[0]), int(span[1])
        with _span("io.read_payload", var=name, rank=rank, nbytes=nbytes):
            with open(self.path / f"data.{entry['subfile']}", "rb") as f:
                f.seek(offset)
                payload = f.read(nbytes)
        if _TRACER.enabled:
            _METRICS.counter(
                "hpdr_io_range_read_bytes_total",
                "bytes fetched via ranged payload reads",
            ).inc(len(payload))
        return payload
