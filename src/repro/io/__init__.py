"""ADIOS2-like I/O substrate.

* :mod:`repro.io.bp` — a BP5-flavoured self-describing container
  format (real bytes, real files): variables with shape/dtype metadata,
  an embedded reduction-operator tag, and CRC-checked payloads.
* :mod:`repro.io.engine` — writer/reader engines with the aggregation
  strategies the paper tunes per system (one aggregator per node on
  Summit, one per GPU on Frontier).
* :mod:`repro.io.filesystem` — GPFS/Lustre bandwidth models used by the
  at-scale simulations.
* :mod:`repro.io.parallel` — the multi-node weak/strong-scaling I/O
  simulations behind Figs. 15, 17 and 18.
"""

from repro.io.bp import BPFile, BPVariable, register_operator, get_operator
from repro.io.engine import BPWriter, BPReader
from repro.io.steps import StepReader, StepWriter
from repro.io.filesystem import io_time, effective_bandwidth
from repro.io.parallel import (
    IOResult,
    ReductionAtScale,
    aggregate_reduction,
    strong_scaling_io,
    weak_scaling_io,
)

__all__ = [
    "BPFile",
    "BPVariable",
    "register_operator",
    "get_operator",
    "BPWriter",
    "BPReader",
    "StepWriter",
    "StepReader",
    "io_time",
    "effective_bandwidth",
    "IOResult",
    "ReductionAtScale",
    "aggregate_reduction",
    "strong_scaling_io",
    "weak_scaling_io",
]
