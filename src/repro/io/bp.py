"""BP5-flavoured self-describing container format.

A BP file holds named variables; each variable records shape, dtype, the
reduction operator that produced its payload (``none`` for raw data),
and a CRC32 over the payload.  Reading a variable transparently inverts
the operator — the integration point the paper uses: HPDR compressors
plug into the ADIOS2 write/read path as operators.

Operators register by name, so any object with ``compress(ndarray) ->
bytes`` / ``decompress(bytes) -> ndarray`` participates.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util import atomic_write_bytes

_MAGIC = b"BP5X"
_VERSION = 1

_OPERATORS: dict[str, Callable[[], object]] = {}


def register_operator(name: str, factory: Callable[[], object]) -> None:
    """Register a reduction operator factory under ``name``."""
    _OPERATORS[name] = factory


def get_operator(name: str):
    if name not in _OPERATORS:
        raise KeyError(
            f"no reduction operator {name!r} registered; known: {sorted(_OPERATORS)}"
        )
    return _OPERATORS[name]()


def _register_defaults() -> None:
    from repro.compressors.mgard.compressor import MGARDX
    from repro.compressors.zfp.compressor import ZFPX
    from repro.compressors.huffman.compressor import HuffmanX
    from repro.compressors.baselines.sz import SZ
    from repro.compressors.baselines.lz4 import LZ4
    from repro.compressors.baselines.mgard_gpu import MGARDGPU
    from repro.compressors.baselines.zfp_cuda import ZFPCUDA

    from repro.compressors.zfp.modes import ZFPAccuracy

    register_operator("mgard-x", MGARDX)
    register_operator("zfp-accuracy", lambda: ZFPAccuracy(tolerance=1e-3))
    register_operator("zfp-x", ZFPX)
    register_operator("huffman-x", HuffmanX)
    register_operator("cusz", SZ)
    register_operator("nvcomp-lz4", LZ4)
    register_operator("mgard-gpu", MGARDGPU)
    register_operator("zfp-cuda", ZFPCUDA)


@dataclass
class BPVariable:
    """One variable entry: metadata + (possibly reduced) payload."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    operator: str
    payload: bytes

    @property
    def crc(self) -> int:
        return zlib.crc32(self.payload)

    @property
    def nbytes_original(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    @property
    def nbytes_stored(self) -> int:
        return len(self.payload)


class BPFile:
    """In-memory BP container, serializable to bytes or a file."""

    def __init__(self) -> None:
        self.variables: dict[str, BPVariable] = {}

    # -- writing -----------------------------------------------------------
    def put(
        self,
        name: str,
        data: np.ndarray,
        operator: str = "none",
        compressor=None,
    ) -> BPVariable:
        """Store a variable, reducing it with ``operator`` if not 'none'.

        ``compressor`` overrides the registry instance (to carry a
        configured error bound); its class must match the operator tag.
        """
        data = np.ascontiguousarray(data)
        if operator == "none":
            payload = data.tobytes()
        else:
            comp = compressor if compressor is not None else get_operator(operator)
            payload = comp.compress(data)
        var = BPVariable(name, data.shape, data.dtype.str, operator, payload)
        self.variables[name] = var
        return var

    def put_reduced(
        self,
        name: str,
        payload: bytes,
        shape: tuple[int, ...],
        dtype,
        operator: str,
    ) -> BPVariable:
        """Store an already-reduced payload (pipeline output)."""
        var = BPVariable(name, tuple(shape), np.dtype(dtype).str, operator, payload)
        self.variables[name] = var
        return var

    # -- reading -----------------------------------------------------------
    def get(self, name: str, compressor=None) -> np.ndarray:
        """Read a variable, inverting its reduction operator."""
        if name not in self.variables:
            raise KeyError(f"no variable {name!r}; have {sorted(self.variables)}")
        var = self.variables[name]
        if var.operator == "none":
            return np.frombuffer(var.payload, dtype=np.dtype(var.dtype)).reshape(
                var.shape
            ).copy()
        comp = compressor if compressor is not None else get_operator(var.operator)
        out = comp.decompress(var.payload)
        return np.asarray(out).reshape(var.shape)

    def payload_spans(self) -> dict[str, tuple[int, int]]:
        """Byte span ``(offset, nbytes)`` of each payload in :meth:`tobytes`.

        Computed from the serialization layout without materializing the
        stream — the writer records these in its index so readers can
        fetch a single variable's payload with one ranged read instead
        of loading the whole subfile (the progressive-retrieval path).
        """
        spans: dict[str, tuple[int, int]] = {}
        off = 4 + struct.calcsize("<BI")
        for var in self.variables.values():
            name_b = var.name.encode("utf-8")
            off += struct.calcsize("<HBBB")
            off += len(name_b) + len(var.dtype.encode("ascii"))
            off += len(var.operator.encode("ascii"))
            off += 8 * len(var.shape)
            off += struct.calcsize("<QI")
            spans[var.name] = (off, len(var.payload))
            off += len(var.payload)
        return spans

    # -- (de)serialization ---------------------------------------------------
    def tobytes(self) -> bytes:
        parts = [_MAGIC, struct.pack("<BI", _VERSION, len(self.variables))]
        for var in self.variables.values():
            name_b = var.name.encode("utf-8")
            dts = var.dtype.encode("ascii")
            op = var.operator.encode("ascii")
            parts.append(
                struct.pack("<HBBB", len(name_b), len(dts), len(op), len(var.shape))
            )
            parts.append(name_b + dts + op)
            parts.append(struct.pack(f"<{len(var.shape)}q", *var.shape))
            parts.append(struct.pack("<QI", len(var.payload), var.crc))
            parts.append(var.payload)
        return b"".join(parts)

    @classmethod
    def frombytes(cls, blob: bytes) -> "BPFile":
        if blob[:4] != _MAGIC:
            raise ValueError("not a BP5X container (bad magic)")
        version, nvars = struct.unpack_from("<BI", blob, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported BP5X version {version}")
        off = 4 + struct.calcsize("<BI")
        bp = cls()
        for _ in range(nvars):
            nlen, dlen, olen, ndim = struct.unpack_from("<HBBB", blob, off)
            off += struct.calcsize("<HBBB")
            name = blob[off : off + nlen].decode("utf-8")
            off += nlen
            dtype = blob[off : off + dlen].decode("ascii")
            off += dlen
            operator = blob[off : off + olen].decode("ascii")
            off += olen
            shape = struct.unpack_from(f"<{ndim}q", blob, off)
            off += 8 * ndim
            plen, crc = struct.unpack_from("<QI", blob, off)
            off += struct.calcsize("<QI")
            payload = blob[off : off + plen]
            off += plen
            if zlib.crc32(payload) != crc:
                raise ValueError(f"CRC mismatch for variable {name!r}")
            bp.variables[name] = BPVariable(name, tuple(shape), dtype, operator, payload)
        return bp

    def save(self, path) -> int:
        # fsync-and-rename: an interrupted flush (crash, injected kill)
        # must never leave a torn subfile next to a valid index.
        return atomic_write_bytes(path, self.tobytes())

    @classmethod
    def load(cls, path) -> "BPFile":
        with open(path, "rb") as f:
            return cls.frombytes(f.read())

    # -- reporting -----------------------------------------------------------
    @property
    def stored_bytes(self) -> int:
        return sum(v.nbytes_stored for v in self.variables.values())

    @property
    def original_bytes(self) -> int:
        return sum(v.nbytes_original for v in self.variables.values())

    @property
    def compression_ratio(self) -> float:
        stored = self.stored_bytes
        return self.original_bytes / stored if stored else float("inf")


_register_defaults()
