"""The auto-tuner: search orchestration + the byte-identity guard.

:class:`AutoTuner` wires a :class:`~repro.tune.search.TuningStrategy`
to a *runner* — any callable mapping a configuration dict to a
:class:`~repro.tune.measure.Measurement` — and enforces the one rule a
learning component must never break: **tuning never changes bytes**.
The default configuration is measured first; every candidate whose
output digest differs from the default's is rejected (told an infinite
cost, counted in ``hpdr_tune_rejected_total``) no matter how fast it
ran.  Only byte-identical winners are persisted.

:func:`tune_matrix` is the campaign behind ``repro tune``: it sweeps
the synthetic-dataset matrix (NYX/XGC/E3SM × codecs), learns one entry
per :class:`~repro.tune.knobs.TuningKey`, and persists the table.
:func:`apply_service_tuning` is the serve/cluster startup hook: it
resolves a service-level entry (micro-batch limits + worker device)
from the cache and rewrites the :class:`~repro.serve.service.ServiceConfig`
before any worker is built.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.trace.metrics import REGISTRY as _METRICS
from repro.tune.cache import TuneEntry, TuningCache
from repro.tune.knobs import (
    KnobSpace,
    TuningKey,
    knob_space_for,
    service_knob_space,
)
from repro.tune.measure import Measurement, digest_bytes, measure_call
from repro.tune.search import CoordinateDescent, config_key

#: ``--tune`` modes accepted everywhere.
TUNE_MODES = ("off", "auto", "force")


@dataclass
class TuneReport:
    """Everything one tuning run learned (and proved)."""

    key: TuningKey
    space: KnobSpace
    best_config: dict[str, Any]
    best_cost: float
    default_cost: float
    digest: str
    evaluations: int = 0
    rejected: int = 0
    history: list[Measurement] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return (config_key(self.best_config)
                != config_key(self.space.default_config())
                and self.best_cost < self.default_cost)

    @property
    def speedup(self) -> float:
        if self.best_cost <= 0 or self.default_cost <= 0:
            return 1.0
        return self.default_cost / self.best_cost

    def entry(self, source: str = "") -> TuneEntry:
        return TuneEntry(
            config=dict(self.best_config),
            cost_s=self.best_cost,
            default_cost_s=self.default_cost,
            digest=self.digest,
            source=source,
        )


class AutoTuner:
    """Searches one key's knob space under the byte-identity guard."""

    def __init__(
        self,
        space: KnobSpace,
        *,
        seed: int = 0,
        epsilon: float = 0.1,
        max_rounds: int = 4,
        budget: int | None = 16,
        strategy_factory: Callable[..., Any] = CoordinateDescent,
    ) -> None:
        self.space = space
        self.seed = seed
        self.epsilon = epsilon
        self.max_rounds = max_rounds
        self.budget = budget
        self.strategy_factory = strategy_factory
        self._ctr_rejected = _METRICS.counter(
            "hpdr_tune_rejected_total",
            "candidate configs rejected by the byte-identity guard",
        )

    def tune(
        self,
        key: TuningKey,
        runner: Callable[[dict[str, Any]], Measurement],
        *,
        cache: TuningCache | None = None,
        source: str = "",
    ) -> TuneReport:
        """Search the space for ``key``; optionally persist the winner.

        ``runner`` executes one configuration and reports its cost and
        output digest.  The default configuration anchors both the
        speedup baseline and the byte-identity digest every candidate
        must match.
        """
        default_config = self.space.default_config()
        baseline = runner(dict(default_config))
        if not baseline.digest:
            raise ValueError(
                "runner returned no digest for the default config — the "
                "byte-identity guard cannot operate without one"
            )
        report = TuneReport(
            key=key,
            space=self.space,
            best_config=dict(default_config),
            best_cost=baseline.seconds,
            default_cost=baseline.seconds,
            digest=baseline.digest,
        )
        report.history.append(baseline)
        strategy = self.strategy_factory(
            self.space, seed=self.seed, epsilon=self.epsilon,
            max_rounds=self.max_rounds,
        )
        evaluations = 0
        while self.budget is None or evaluations < self.budget:
            config = strategy.ask()
            if config is None:
                break
            self.space.validate(config)
            if config_key(config) == config_key(default_config):
                strategy.tell(config, baseline.seconds)
                evaluations += 1
                continue
            m = runner(dict(config))
            report.history.append(m)
            evaluations += 1
            if m.digest != baseline.digest:
                # The guard: a faster config that changes even one
                # output byte is worthless — reduction streams are
                # archival artifacts.
                report.rejected += 1
                self._ctr_rejected.inc(codec=key.codec)
                strategy.tell(config, math.inf)
                continue
            strategy.tell(config, m.seconds)
        best_config, best_cost = strategy.best()
        if math.isfinite(best_cost) and best_cost < report.best_cost:
            report.best_config = best_config
            report.best_cost = best_cost
        report.evaluations = evaluations
        if cache is not None:
            entry = report.entry(source=source)
            # Belt and braces for the persistence invariant the
            # hypothesis suite pins: an entry only ever records the
            # default-config digest.
            assert entry.digest == baseline.digest
            cache.put(key, entry)
        return report


# ---------------------------------------------------------------------------
# Codec runners + the synthetic-dataset campaign
# ---------------------------------------------------------------------------
def build_codec(codec: str, config: dict[str, Any]) -> Any:
    """Instantiate ``codec`` as one configuration dict describes.

    Shared execution knobs (``adapter``/``threads``) become the device
    adapter; remaining keys are codec constructor kwargs (declared
    knobs), so a config round-trips 1:1 into a codec instance.
    """
    from repro.adapters import get_adapter
    from repro.serve.spec import CodecSpec

    kwargs = dict(config)
    family = kwargs.pop("adapter", "serial")
    threads = kwargs.pop("threads", None)
    adapter_kwargs: dict[str, Any] = {}
    if family == "openmp" and threads is not None:
        adapter_kwargs["num_threads"] = int(threads)
    adapter = get_adapter(family, **adapter_kwargs)
    spec_kwargs = {k: v for k, v in kwargs.items()
                   if k in ("error_bound", "error_mode", "rate",
                            "dict_size", "chunk_size")}
    spec = CodecSpec(codec, **spec_kwargs)
    return spec.build(adapter=adapter)


def codec_runner(
    codec: str,
    data: Any,
    *,
    reps: int = 2,
    clock: Callable[[], float] | None = None,
) -> Callable[[dict[str, Any]], Measurement]:
    """A runner compressing ``data`` under each proposed configuration.

    The first compress warms the CMM contexts *and* provides the digest
    bytes; timing then measures the steady state (what production runs
    see), min-over-``reps``.
    """

    def run(config: dict[str, Any]) -> Measurement:
        comp = build_codec(codec, config)
        try:
            blob = comp.compress(data)
            seconds, _ = measure_call(
                lambda: comp.compress(data), reps=reps, clock=clock
            )
            return Measurement(config=dict(config), seconds=seconds,
                               digest=digest_bytes(blob))
        finally:
            close = getattr(getattr(comp, "adapter", None), "close", None)
            if close is not None:
                close()

    return run


def matrix_datasets(quick: bool = False) -> dict[str, Any]:
    """The synthetic-dataset matrix (name -> array), Table III shapes."""
    import numpy as np

    from repro.data.synthetic import e3sm_like, nyx_like, xgc_like

    if quick:
        nyx = nyx_like((16, 16, 16), seed=1)
        xgc = xgc_like((4, 8, 8, 8), seed=2)
        e3sm = e3sm_like((4, 16, 16), seed=3)
    else:
        nyx = nyx_like((32, 32, 32), seed=1)
        xgc = xgc_like((8, 12, 12, 12), seed=2)
        e3sm = e3sm_like((8, 24, 24), seed=3)
    # Low-entropy integer-valued floats: the lossless codec's natural
    # diet (quantized keys), deterministic per seed.
    ints = np.round(nyx * 4).astype(np.float32)
    return {"nyx": nyx, "xgc": xgc, "e3sm": e3sm, "ints": ints}


#: (dataset, codec) campaign cells for ``repro tune`` / bench_tune.
MATRIX_CELLS: tuple[tuple[str, str], ...] = (
    ("nyx", "mgard-x"),
    ("nyx", "zfp-x"),
    ("e3sm", "zfp-x"),
    ("xgc", "sz"),
    ("ints", "huffman-x"),
)


def tune_matrix(
    cache: TuningCache,
    *,
    quick: bool = False,
    seed: int = 0,
    budget: int | None = None,
    reps: int = 2,
    cells: tuple[tuple[str, str], ...] = MATRIX_CELLS,
    progress: Callable[[str], None] | None = None,
) -> dict[str, TuneReport]:
    """Run the tuning campaign over the synthetic-dataset matrix.

    Returns one :class:`TuneReport` per cell, keyed by the tuning key's
    string form; every winner is persisted into ``cache``.
    """
    datasets = matrix_datasets(quick=quick)
    if budget is None:
        budget = 6 if quick else 16
    reports: dict[str, TuneReport] = {}
    for dataset_name, codec in cells:
        data = datasets[dataset_name]
        key = TuningKey.for_array(codec, data)
        space = knob_space_for(codec)
        tuner = AutoTuner(space, seed=seed, budget=budget)
        report = tuner.tune(
            key,
            codec_runner(codec, data, reps=reps),
            cache=cache,
            source=f"repro tune ({dataset_name})",
        )
        reports[str(key)] = report
        if progress is not None:
            progress(
                f"{dataset_name}/{codec}: {report.speedup:.2f}x "
                f"({report.evaluations} evals, {report.rejected} rejected "
                f"by the byte guard)"
            )
    return reports


# ---------------------------------------------------------------------------
# Config resolution (CLI --tune auto|off|force)
# ---------------------------------------------------------------------------
def resolve_codec_config(
    mode: str,
    codec: str,
    data: Any,
    *,
    cache: TuningCache | None = None,
    seed: int = 0,
    budget: int | None = 8,
) -> dict[str, Any]:
    """The configuration ``--tune MODE`` selects for compressing ``data``.

    ``off`` — grid defaults; ``auto`` — the cached entry when one
    exists and still fits the current knob grid, defaults otherwise;
    ``force`` — tune right now on the actual data (persisting the
    winner) and use the result.
    """
    if mode not in TUNE_MODES:
        raise ValueError(f"tune mode must be one of {TUNE_MODES}, got {mode!r}")
    space = knob_space_for(codec)
    if mode == "off":
        return space.default_config()
    if cache is None:
        cache = TuningCache()
    key = TuningKey.for_array(codec, data)
    if mode == "force":
        tuner = AutoTuner(space, seed=seed, budget=budget)
        report = tuner.tune(key, codec_runner(codec, data),
                            cache=cache, source="--tune force")
        return dict(report.best_config)
    entry = cache.get(key)
    if entry is not None and space.contains(entry.config):
        _METRICS.counter(
            "hpdr_tune_cache_hits_total", "tuning-cache lookups that hit"
        ).inc(codec=codec)
        return dict(entry.config)
    _METRICS.counter(
        "hpdr_tune_cache_misses_total", "tuning-cache lookups that missed"
    ).inc(codec=codec)
    return space.default_config()


# ---------------------------------------------------------------------------
# Serve/cluster startup hook
# ---------------------------------------------------------------------------
def apply_service_tuning(cfg: Any) -> Any:
    """Rewrite a :class:`ServiceConfig` from its cached tuned entry.

    Called by ``ReductionService.start()`` (and therefore by every
    cluster shard) before any worker is built, when ``cfg.tune`` is
    ``auto``/``force``.  A hit rewrites the micro-batch limits and the
    worker device; a miss — including a stale-schema or corrupt cache
    file, which loads as empty — leaves the config untouched.  Metrics:
    ``hpdr_tune_cache_hits_total`` / ``hpdr_tune_cache_misses_total``
    with ``codec=__service__``.
    """
    import dataclasses

    from repro.serve.batcher import BatchLimits
    from repro.tune.knobs import SERVICE_CODEC

    if getattr(cfg, "tune", "off") == "off":
        return cfg
    cache = TuningCache(cfg.tuning_cache)
    key = TuningKey.for_service(process=bool(getattr(cfg, "process", False)))
    entry = cache.get(key)
    space = service_knob_space()
    if entry is None or not space.contains(entry.config):
        _METRICS.counter(
            "hpdr_tune_cache_misses_total", "tuning-cache lookups that missed"
        ).inc(codec=SERVICE_CODEC)
        return cfg
    _METRICS.counter(
        "hpdr_tune_cache_hits_total", "tuning-cache lookups that hit"
    ).inc(codec=SERVICE_CODEC)
    c = entry.config
    return dataclasses.replace(
        cfg,
        limits=BatchLimits(
            max_batch=int(c["max_batch"]),
            max_bytes=int(c["max_bytes"]),
            max_latency_s=float(c["max_latency_ms"]) / 1e3,
        ),
        adapter=str(c["adapter"]),
        threads=int(c["threads"]) if c["adapter"] == "openmp" else None,
    )


def service_runner(
    *,
    clients: int = 16,
    requests_per_client: int = 8,
    shape: tuple[int, int] = (16, 16),
    codec: str = "zfp-x",
) -> Callable[[dict[str, Any]], Measurement]:
    """A runner measuring one service configuration under closed-loop load.

    Cost is the blast wall time for a fixed request count; the digest
    covers one compressed answer (byte-stability means every config
    must produce the identical stream — the guard re-proves it).
    """

    def run(config: dict[str, Any]) -> Measurement:
        import asyncio

        from repro.serve import (
            BatchLimits,
            CodecSpec,
            ReductionService,
            ServiceConfig,
            default_payloads,
            run_blast,
        )
        from repro.serve.loadgen import ServiceClient

        spec = CodecSpec(codec)
        payloads = default_payloads([spec], shape=shape)

        async def drive() -> tuple[float, bytes]:
            svc_cfg = ServiceConfig(
                limits=BatchLimits(
                    max_batch=int(config["max_batch"]),
                    max_bytes=int(config["max_bytes"]),
                    max_latency_s=float(config["max_latency_ms"]) / 1e3,
                ),
                adapter=str(config["adapter"]),
                threads=(int(config["threads"])
                         if config["adapter"] == "openmp" else None),
                max_pending=4 * clients,
            )
            async with ReductionService(svc_cfg) as svc:
                blob = await svc.compress(spec, payloads[spec])
                report = await run_blast(
                    lambda i: _aclient(svc),
                    clients=clients,
                    requests_per_client=requests_per_client,
                    specs=[spec],
                    payloads=payloads,
                )
                return report["wall_s"], bytes(blob)

        async def _aclient(svc: Any) -> Any:
            return ServiceClient(svc)

        wall_s, blob = asyncio.run(drive())
        return Measurement(config=dict(config), seconds=wall_s,
                           digest=digest_bytes(blob))

    return run


def tune_service(
    cache: TuningCache,
    *,
    process: bool = False,
    seed: int = 0,
    budget: int | None = 8,
    clients: int = 16,
    requests_per_client: int = 8,
) -> TuneReport:
    """Learn (and persist) the service-level micro-batch entry."""
    space = service_knob_space()
    tuner = AutoTuner(space, seed=seed, budget=budget)
    key = TuningKey.for_service(process=process)
    return tuner.tune(
        key,
        service_runner(clients=clients,
                       requests_per_client=requests_per_client),
        cache=cache,
        source="repro tune --serve",
    )
