"""HPDR-Tune: trace-driven online auto-tuning with a persistent cache.

The paper's Algorithm 4 picks chunk sizes from *a-priori* roofline
models Φ(C)/Θ(t); this package closes the loop with *observed*
performance — in the spirit of DaCe's stateful-dataflow transformation
search and HPVM's retargetable scheduling.  A reduction run is treated
as a transformable configuration (device adapter, thread count, serve
micro-batch limits, codec-declared knobs) searched by a deterministic,
seedable strategy (:class:`CoordinateDescent` + ε-greedy over a
discretized grid) against measurements from HPDR-Trace spans
(:class:`MeasurementSink`) and wall-clock timing (:func:`measure_call`).

Two invariants make a learning component safe to ship:

* **byte identity** — :class:`AutoTuner` digest-compares every
  candidate's output against the default configuration's and rejects
  any difference; only byte-identical winners persist.  ``--tune auto``
  can change *when* your bytes arrive, never *which* bytes.
* **fail-open persistence** — the :class:`TuningCache` is CRC-validated
  and atomically written; any corruption, truncation or schema drift
  loads as an empty cache (defaults everywhere), never an error.

Consumers: ``repro compress/refactor --tune auto|off|force`` and the
``repro tune`` campaign (CLI), :class:`~repro.serve.service.ReductionService`
and every :class:`~repro.cluster.ClusterService` shard at startup
(:func:`apply_service_tuning`), and ``benchmarks/bench_tune.py`` whose
``BENCH_tune.json`` is gated by ``perf_gate.py --tune-min-speedup``.
"""

from __future__ import annotations

from repro.tune.cache import (
    CACHE_FORMAT,
    CACHE_VERSION,
    TuneEntry,
    TuningCache,
    default_cache_path,
)
from repro.tune.knobs import (
    Knob,
    KnobSpace,
    SERVICE_CODEC,
    TuningKey,
    backend_id,
    execution_knobs,
    knob_space_for,
    service_knob_space,
)
from repro.tune.measure import (
    FakeClock,
    Measurement,
    MeasurementSink,
    attributed_measure,
    digest_bytes,
    measure_call,
    stage_share,
)
from repro.tune.search import (
    CoordinateDescent,
    TuningStrategy,
    config_key,
    run_search,
)
from repro.tune.tuner import (
    AutoTuner,
    MATRIX_CELLS,
    TUNE_MODES,
    TuneReport,
    apply_service_tuning,
    build_codec,
    codec_runner,
    matrix_datasets,
    resolve_codec_config,
    service_runner,
    tune_matrix,
    tune_service,
)

__all__ = [
    "AutoTuner",
    "CACHE_FORMAT",
    "CACHE_VERSION",
    "CoordinateDescent",
    "FakeClock",
    "Knob",
    "KnobSpace",
    "MATRIX_CELLS",
    "Measurement",
    "MeasurementSink",
    "SERVICE_CODEC",
    "TUNE_MODES",
    "TuneEntry",
    "TuneReport",
    "TuningCache",
    "TuningKey",
    "TuningStrategy",
    "apply_service_tuning",
    "attributed_measure",
    "backend_id",
    "build_codec",
    "codec_runner",
    "config_key",
    "default_cache_path",
    "digest_bytes",
    "execution_knobs",
    "knob_space_for",
    "matrix_datasets",
    "measure_call",
    "resolve_codec_config",
    "run_search",
    "service_knob_space",
    "service_runner",
    "stage_share",
    "tune_matrix",
    "tune_service",
]
