"""Measurement plumbing: wall-clock timing + HPDR-Trace span attribution.

Two sources feed the tuner:

* :func:`measure_call` — min-over-reps wall-clock timing of one
  configuration's run, with an **injectable clock** so the test suite
  drives the search with a :class:`FakeClock` and pays zero wall time;
* :class:`MeasurementSink` — a consumer of the tracer's measurement-sink
  API (:meth:`repro.trace.Tracer.add_sink`): while attached it receives
  every committed :class:`~repro.trace.SpanEvent` and aggregates
  per-stage totals, so a tuning report can say *where* a configuration
  spends its time (``huffman.encode`` vs ``mgard.decompose``), not just
  how long the whole run took.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.trace.tracer import SpanEvent, TRACER, Tracer


@dataclass
class Measurement:
    """One configuration's observed cost.

    ``seconds`` is the optimization objective (lower is better);
    ``digest`` is the SHA-256 of the run's output bytes — the
    byte-identity evidence the tuner compares against the default
    configuration before accepting anything; ``stage_seconds`` is the
    optional per-stage attribution from an attached
    :class:`MeasurementSink`.
    """

    config: dict[str, Any]
    seconds: float
    digest: str = ""
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


def digest_bytes(*blobs: bytes) -> str:
    """SHA-256 over the concatenated output blobs (the identity proof)."""
    h = hashlib.sha256()
    for blob in blobs:
        h.update(blob)
    return h.hexdigest()


class FakeClock:
    """Deterministic injectable clock for the tune test-suite.

    ``()`` returns the current reading; :meth:`advance` moves it.  A
    measure function wired to a FakeClock makes search convergence a
    pure function of the synthetic cost surface — no scheduler noise,
    no quarantine markers.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self.now += seconds


def measure_call(
    fn: Callable[[], Any],
    *,
    reps: int = 3,
    clock: Callable[[], float] | None = None,
) -> tuple[float, Any]:
    """Best-of-``reps`` seconds for ``fn()`` plus its last return value.

    Minimum over repetitions is the standard noise-rejection estimator
    (matching :mod:`repro.bench.wallclock`): system jitter only ever
    adds time.  The clock is injectable for deterministic tests.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    tick = clock if clock is not None else time.perf_counter
    best = float("inf")
    value: Any = None
    for _ in range(reps):
        t0 = tick()
        value = fn()
        best = min(best, tick() - t0)
    return best, value


class MeasurementSink:
    """Aggregates committed spans into per-stage totals while attached.

    Usage::

        sink = MeasurementSink()
        with sink.attached():
            run_configuration()
        report = sink.stage_seconds()

    Thread-safe: spans commit on worker threads.  Use as a context
    manager (or :meth:`attach`/:meth:`detach`) around exactly the run
    being measured; the tracer must be enabled for spans to flow.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._tracer = tracer if tracer is not None else TRACER
        self._lock = threading.Lock()
        self._totals_ns: dict[str, int] = {}
        self._counts: dict[str, int] = {}

    # The sink callable itself — handed to Tracer.add_sink.
    def __call__(self, event: SpanEvent) -> None:
        with self._lock:
            self._totals_ns[event.name] = (
                self._totals_ns.get(event.name, 0) + event.dur_ns
            )
            self._counts[event.name] = self._counts.get(event.name, 0) + 1

    def attach(self) -> "MeasurementSink":
        self._tracer.add_sink(self)
        return self

    def detach(self) -> None:
        self._tracer.remove_sink(self)

    def attached(self) -> "_SinkScope":
        return _SinkScope(self)

    def reset(self) -> None:
        with self._lock:
            self._totals_ns.clear()
            self._counts.clear()

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage total seconds observed while attached."""
        with self._lock:
            return {k: v / 1e9 for k, v in self._totals_ns.items()}

    def stage_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._totals_ns.values()) / 1e9


class _SinkScope:
    """Context manager attaching/detaching one :class:`MeasurementSink`."""

    def __init__(self, sink: MeasurementSink) -> None:
        self._sink = sink

    def __enter__(self) -> MeasurementSink:
        return self._sink.attach()

    def __exit__(self, *exc: Any) -> bool:
        self._sink.detach()
        return False


def attributed_measure(
    fn: Callable[[], Any],
    *,
    reps: int = 3,
    tracer: Tracer | None = None,
) -> tuple[float, Any, dict[str, float]]:
    """:func:`measure_call` plus per-stage attribution via a sink.

    Enables the tracer for the duration when it is not already on, so
    callers get stage data without globally flipping tracing.
    """
    t = tracer if tracer is not None else TRACER
    sink = MeasurementSink(t)
    was_enabled = t.enabled
    if not was_enabled:
        t.enable()
    try:
        with sink.attached():
            seconds, value = measure_call(fn, reps=reps)
    finally:
        if not was_enabled:
            t.disable()
    return seconds, value, sink.stage_seconds()


def stage_share(stage_seconds: Mapping[str, float]) -> dict[str, float]:
    """Normalize per-stage seconds to fractions of the traced total."""
    total = sum(stage_seconds.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in stage_seconds.items()}
