"""The persistent tuning cache: CRC-validated, atomically written JSON.

One file holds every learned configuration, keyed by the string form of
:class:`~repro.tune.knobs.TuningKey`.  On-disk format (version 1)::

    {
      "format": "hpdr-tune",
      "version": 1,
      "crc": 2868347520,
      "entries": {
        "zfp-x|<f4|3x262144|cpu4": {
          "config": {"adapter": "serial", "threads": 1},
          "cost_s": 0.0123,
          "default_cost_s": 0.0130,
          "digest": "9f86d0…",
          "source": "repro tune"
        }
      }
    }

``crc`` is CRC-32 over the canonical (sorted-key, compact) JSON of the
``entries`` object alone, so any torn write, truncation or hand edit is
detected.  **A learning component must never be able to poison the
system**: every load failure — missing file, invalid JSON, wrong
format/version, CRC mismatch, malformed entry — degrades to an empty
cache (defaults everywhere) and bumps the
``hpdr_tune_cache_invalid_total`` counter; nothing raises on the read
path.

Writes go through read-merge-write + :func:`repro.util.atomic_write_bytes`
(tmp + fsync + rename): two processes racing :meth:`TuningCache.put`
can lose one of the two updates (last rename wins) but a reader can
never observe a torn file — the concurrency property the tune suite
pins with real racing processes.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.trace.metrics import REGISTRY as _METRICS
from repro.tune.knobs import TuningKey
from repro.util import atomic_write_bytes

#: on-disk schema identity.
CACHE_FORMAT = "hpdr-tune"
CACHE_VERSION = 1


def default_cache_path() -> Path:
    """``$HPDR_TUNE_CACHE`` > ``$XDG_CACHE_HOME/hpdr`` > ``~/.cache/hpdr``."""
    env = os.environ.get("HPDR_TUNE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hpdr" / "tuning.json"


@dataclass(frozen=True)
class TuneEntry:
    """One learned configuration plus the evidence that justified it."""

    config: dict[str, Any]
    cost_s: float
    default_cost_s: float = 0.0
    digest: str = ""
    source: str = ""

    @property
    def speedup(self) -> float:
        """Measured default-over-tuned ratio (1.0 when unknown)."""
        if self.cost_s <= 0 or self.default_cost_s <= 0:
            return 1.0
        return self.default_cost_s / self.cost_s

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, obj: Any) -> "TuneEntry":
        if not isinstance(obj, dict) or not isinstance(obj.get("config"), dict):
            raise ValueError(f"malformed tune entry: {obj!r}")
        return cls(
            config=dict(obj["config"]),
            cost_s=float(obj.get("cost_s", 0.0)),
            default_cost_s=float(obj.get("default_cost_s", 0.0)),
            digest=str(obj.get("digest", "")),
            source=str(obj.get("source", "")),
        )


def _entries_crc(entries: dict[str, Any]) -> int:
    canonical = json.dumps(entries, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return zlib.crc32(canonical) & 0xFFFFFFFF


def _record_bytes(entries: dict[str, Any]) -> bytes:
    record = {
        "format": CACHE_FORMAT,
        "version": CACHE_VERSION,
        "crc": _entries_crc(entries),
        "entries": entries,
    }
    return (json.dumps(record, sort_keys=True, indent=1) + "\n").encode("utf-8")


class CacheInvalid(ValueError):
    """Why a cache file was rejected (internal; never escapes reads)."""


def _parse_record(raw: bytes) -> dict[str, TuneEntry]:
    try:
        record = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CacheInvalid(f"not JSON: {exc}")
    if not isinstance(record, dict):
        raise CacheInvalid("top level is not an object")
    if record.get("format") != CACHE_FORMAT:
        raise CacheInvalid(f"format {record.get('format')!r} != {CACHE_FORMAT!r}")
    if record.get("version") != CACHE_VERSION:
        raise CacheInvalid(
            f"schema version {record.get('version')!r} != {CACHE_VERSION}"
        )
    entries = record.get("entries")
    if not isinstance(entries, dict):
        raise CacheInvalid("entries is not an object")
    if record.get("crc") != _entries_crc(entries):
        raise CacheInvalid("CRC mismatch (torn write or hand edit)")
    parsed: dict[str, TuneEntry] = {}
    for key, value in entries.items():
        TuningKey.parse(key)  # raises ValueError on malformed keys
        parsed[key] = TuneEntry.from_json(value)
    return parsed


class TuningCache:
    """Read/write access to one tuning-cache file.

    All reads are forgiving (see module docstring); writes re-read the
    file first so concurrent writers merge instead of clobbering whole
    tables, then replace it atomically.
    """

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._ctr_invalid = _METRICS.counter(
            "hpdr_tune_cache_invalid_total",
            "tuning-cache loads rejected (bad CRC/version/JSON)",
        )

    # -- reads ---------------------------------------------------------
    def load(self) -> dict[str, TuneEntry]:
        """Every valid entry, or ``{}`` on any failure (never raises)."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return {}
        try:
            return _parse_record(raw)
        except (CacheInvalid, ValueError) as exc:
            self._ctr_invalid.inc(reason=type(exc).__name__)
            return {}

    def get(self, key: TuningKey | str) -> TuneEntry | None:
        return self.load().get(str(key))

    def __len__(self) -> int:
        return len(self.load())

    # -- writes --------------------------------------------------------
    def put(self, key: TuningKey | str, entry: TuneEntry) -> None:
        """Merge one entry into the file and replace it atomically."""
        if not isinstance(entry, TuneEntry):
            raise TypeError(f"put() takes a TuneEntry, got {type(entry)!r}")
        merged = {k: e.to_json() for k, e in self.load().items()}
        merged[str(key)] = entry.to_json()
        self._write(merged)

    def put_many(self, items: dict[str, TuneEntry]) -> None:
        merged = {k: e.to_json() for k, e in self.load().items()}
        for key, entry in items.items():
            merged[str(key)] = entry.to_json()
        self._write(merged)

    def evict(self, key: TuningKey | str) -> bool:
        """Drop one entry (invalidation); True when it existed."""
        entries = self.load()
        if str(key) not in entries:
            return False
        merged = {k: e.to_json() for k, e in entries.items()
                  if k != str(key)}
        self._write(merged)
        return True

    def clear(self) -> None:
        self._write({})

    def _write(self, entries: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self.path, _record_bytes(entries))

    # -- reporting -----------------------------------------------------
    def table(self) -> str:
        """Human-readable dump of the learned table (``repro tune``)."""
        entries = self.load()
        if not entries:
            return "(tuning cache is empty)"
        w = max(len(k) for k in entries)
        lines = [f"{'key'.ljust(w)} {'speedup':>8}  config"]
        for key in sorted(entries):
            e = entries[key]
            cfg = " ".join(f"{k}={v}" for k, v in sorted(e.config.items()))
            lines.append(f"{key.ljust(w)} {e.speedup:>7.2f}x  {cfg}")
        return "\n".join(lines)
