"""Deterministic, seedable search strategies over a :class:`KnobSpace`.

The protocol is **ask/tell** (the standard optimizer-as-a-service
shape): the strategy proposes one configuration at a time via
:meth:`ask`, the caller measures it however it likes (real wall clock,
trace spans, a synthetic surface in tests) and reports the cost via
:meth:`tell`.  The strategy never runs anything itself, which is what
makes it trivially testable and lets one implementation drive codec
runs, serve campaigns and unit tests alike.

The shipped strategy is :class:`CoordinateDescent` — the discrete-grid
classic: sweep one knob at a time around the incumbent, adopt any
improvement, repeat until a full round yields none.  An ε-greedy twist
(in the spirit of DaCe's transformation search) occasionally proposes a
uniformly random grid point so the search can escape a locally-flat
coordinate profile.  Everything is driven by one ``random.Random(seed)``
— the same seed and the same cost function reproduce the exact proposal
sequence (pinned by ``repro.testing.check_tuner``).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Protocol, runtime_checkable

from repro.tune.knobs import KnobSpace

ConfigKey = tuple[tuple[str, Any], ...]


def config_key(config: dict[str, Any]) -> ConfigKey:
    """Hashable identity of a configuration (order-insensitive)."""
    return tuple(sorted(config.items()))


@runtime_checkable
class TuningStrategy(Protocol):
    """What the tuner (and ``check_tuner``) require of a strategy."""

    def ask(self) -> dict[str, Any] | None:
        """Next configuration to measure; ``None`` when converged."""

    def tell(self, config: dict[str, Any], cost: float) -> None:
        """Report the measured cost of the last :meth:`ask` proposal."""

    def best(self) -> tuple[dict[str, Any], float]:
        """Best (config, cost) observed so far."""


class CoordinateDescent:
    """Coordinate descent + ε-greedy exploration over a discrete grid.

    Parameters
    ----------
    space:
        The knob grid to search.
    seed:
        Seeds the single ``random.Random`` behind ε-exploration; equal
        seeds reproduce equal proposal sequences.
    epsilon:
        Per-coordinate-sweep probability of one extra uniformly random
        proposal (0 disables exploration).
    max_rounds:
        Upper bound on full coordinate rounds; the search also stops as
        soon as a complete round fails to improve the incumbent.
    """

    def __init__(
        self,
        space: KnobSpace,
        *,
        seed: int = 0,
        epsilon: float = 0.1,
        max_rounds: int = 4,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.space = space
        self.epsilon = float(epsilon)
        self.max_rounds = int(max_rounds)
        self._rng = random.Random(seed)
        self._seen: dict[ConfigKey, float] = {}
        self._best_config = space.default_config()
        self._best_cost = float("inf")
        self._outstanding: dict[str, Any] | None = None
        self._done = False
        self._gen = self._drive()
        self._advance(None)

    # -- protocol ------------------------------------------------------
    def ask(self) -> dict[str, Any] | None:
        if self._done:
            return None
        if self._outstanding is not None:
            raise RuntimeError("tell() the previous proposal before ask()")
        self._outstanding = dict(self._next)
        return dict(self._next)

    def tell(self, config: dict[str, Any], cost: float) -> None:
        if self._outstanding is None:
            raise RuntimeError("tell() without a pending ask()")
        if config_key(config) != config_key(self._outstanding):
            raise ValueError(
                f"tell() got {config!r}, expected the asked proposal "
                f"{self._outstanding!r}"
            )
        self._outstanding = None
        self._advance(float(cost))

    def best(self) -> tuple[dict[str, Any], float]:
        return dict(self._best_config), self._best_cost

    @property
    def done(self) -> bool:
        return self._done

    @property
    def evaluations(self) -> int:
        return len(self._seen)

    # -- engine --------------------------------------------------------
    def _advance(self, cost: float | None) -> None:
        try:
            if cost is None:
                self._next = next(self._gen)
            else:
                self._next = self._gen.send(cost)
        except StopIteration:
            self._done = True

    def _record(self, config: dict[str, Any], cost: float) -> None:
        self._seen[config_key(config)] = cost
        if cost < self._best_cost:
            self._best_cost = cost
            self._best_config = dict(config)

    def _random_config(self) -> dict[str, Any]:
        return {
            knob.name: knob.values[self._rng.randrange(len(knob.values))]
            for knob in self.space
        }

    def _drive(self) -> Generator[dict[str, Any], float, None]:
        """The search program; ``yield config`` receives its cost."""

        def evaluate(
            config: dict[str, Any],
        ) -> Generator[dict[str, Any], float, float]:
            # Cache hits are free: re-proposing a measured point would
            # waste a real run, so replay the recorded cost instead.
            key = config_key(config)
            if key in self._seen:
                return self._seen[key]
            cost = yield dict(config)
            self._record(config, cost)
            return cost

        yield from evaluate(self.space.default_config())
        for _ in range(self.max_rounds):
            round_start_cost = self._best_cost
            for knob in self.space:
                for value in knob.values:
                    if value == self._best_config[knob.name]:
                        continue
                    candidate = dict(self._best_config)
                    candidate[knob.name] = value
                    yield from evaluate(candidate)
                if self.epsilon > 0 and self._rng.random() < self.epsilon:
                    yield from evaluate(self._random_config())
            if self._best_cost >= round_start_cost:
                return  # a full round without improvement: converged


def run_search(
    strategy: TuningStrategy,
    evaluate: Callable[[dict[str, Any]], float],
    *,
    budget: int | None = None,
) -> tuple[dict[str, Any], float]:
    """Drive ``strategy`` with ``evaluate`` until done (or ``budget``).

    ``budget`` bounds the number of *evaluations* — a tuning campaign
    over real codec runs wants a hard ceiling on wall-clock spent.
    """
    evaluations = 0
    while budget is None or evaluations < budget:
        config = strategy.ask()
        if config is None:
            break
        strategy.tell(config, evaluate(config))
        evaluations += 1
    return strategy.best()
