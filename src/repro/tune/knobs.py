"""Tunable-knob declarations and tuning keys.

A :class:`Knob` is one discrete search dimension — a name, the grid of
values the tuner may propose, and the hand-tuned default the search
starts from (and falls back to).  A :class:`KnobSpace` is an ordered
collection of knobs; it defines the configuration dictionaries every
strategy proposes and every cache entry stores.

Codecs declare their own knobs as plain data (``tunable_knobs()``
returning ``(name, values, default)`` tuples) so the compressor
packages never import this package; :func:`knob_space_for` merges those
declarations with the execution knobs every codec shares (adapter
family, thread count).

A :class:`TuningKey` identifies *what* a learned configuration applies
to: ``(codec, dtype, shape-class, backend)``.  The backend component
embeds the core count (``cpu4``) so a cache written on one machine
class is never misapplied on another — a knob setting that wins on 16
cores can lose on 1.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class Knob:
    """One discrete tuning dimension.

    ``stream_affecting`` marks knobs whose value is serialized into the
    reduction stream (e.g. Huffman ``chunk_size``): the tuner may still
    explore them, but the byte-identity guard rejects any non-default
    value — they exist to *prove* the guard works, and to document
    which parameters could never be auto-tuned safely.
    """

    name: str
    values: tuple[Any, ...]
    default: Any
    stream_affecting: bool = False

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"knob {self.name!r} has no values")
        if self.default not in self.values:
            raise ValueError(
                f"knob {self.name!r}: default {self.default!r} not in "
                f"values {self.values!r}"
            )


class KnobSpace:
    """An ordered set of :class:`Knob` dimensions (the search grid)."""

    def __init__(self, knobs: Sequence[Knob]) -> None:
        if not knobs:
            raise ValueError("a KnobSpace needs at least one knob")
        names = [k.name for k in knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names in {names}")
        self.knobs: tuple[Knob, ...] = tuple(knobs)
        self._by_name = {k.name: k for k in self.knobs}

    def __iter__(self) -> Iterator[Knob]:
        return iter(self.knobs)

    def __len__(self) -> int:
        return len(self.knobs)

    def __getitem__(self, name: str) -> Knob:
        return self._by_name[name]

    def names(self) -> tuple[str, ...]:
        return tuple(k.name for k in self.knobs)

    def default_config(self) -> dict[str, Any]:
        """The hand-tuned starting point (and the byte-identity anchor)."""
        return {k.name: k.default for k in self.knobs}

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``config`` is exactly on the grid."""
        extra = set(config) - set(self._by_name)
        if extra:
            raise ValueError(f"unknown knobs {sorted(extra)}; "
                             f"space has {list(self.names())}")
        for knob in self.knobs:
            if knob.name not in config:
                raise ValueError(f"config is missing knob {knob.name!r}")
            if config[knob.name] not in knob.values:
                raise ValueError(
                    f"knob {knob.name!r}: {config[knob.name]!r} not in "
                    f"allowed values {knob.values!r}"
                )

    def contains(self, config: Mapping[str, Any]) -> bool:
        try:
            self.validate(config)
        except ValueError:
            return False
        return True

    def grid_size(self) -> int:
        n = 1
        for knob in self.knobs:
            n *= len(knob.values)
        return n


# ---------------------------------------------------------------------------
# Tuning keys
# ---------------------------------------------------------------------------
def backend_id() -> str:
    """This machine's backend class, e.g. ``cpu4``.

    Learned configs are execution-environment-specific: the core count
    is the dominant variable on the simulated-accelerator stack, so it
    is the one baked into the key.
    """
    return f"cpu{os.cpu_count() or 1}"


@dataclass(frozen=True)
class TuningKey:
    """What a learned configuration applies to.

    ``shape_class`` uses the serve-layer bucketing (rank, next-pow2
    element count) — see :func:`repro.serve.spec.shape_class` — so one
    entry covers the near-identical working sets that already share CMM
    contexts.  Service-level entries (micro-batch limits) use the
    reserved codec name ``__service__`` with a wildcard dtype/shape.
    """

    codec: str
    dtype: str
    shape_class: tuple[int, int]
    backend: str

    def __str__(self) -> str:
        rank, elems = self.shape_class
        return f"{self.codec}|{self.dtype}|{rank}x{elems}|{self.backend}"

    @classmethod
    def parse(cls, text: str) -> "TuningKey":
        parts = text.split("|")
        if len(parts) != 4:
            raise ValueError(f"malformed tuning key {text!r}")
        codec, dtype, shape, backend = parts
        rank_s, _, elems_s = shape.partition("x")
        try:
            shape_class = (int(rank_s), int(elems_s))
        except ValueError:
            raise ValueError(f"malformed shape class in key {text!r}")
        return cls(codec, dtype, shape_class, backend)

    @classmethod
    def for_array(cls, codec: str, data: Any,
                  backend: str | None = None) -> "TuningKey":
        """Key for compressing ``data`` (an ndarray) with ``codec``."""
        import numpy as np

        from repro.serve.spec import shape_class

        arr = np.asarray(data)
        return cls(codec, arr.dtype.str, shape_class(arr.shape),
                   backend if backend is not None else backend_id())

    @classmethod
    def for_service(cls, *, process: bool = False,
                    backend: str | None = None) -> "TuningKey":
        """Service-level key (micro-batch limits, worker device)."""
        mode = "process" if process else "thread"
        base = backend if backend is not None else backend_id()
        return cls(SERVICE_CODEC, "*", (0, 0), f"serve-{mode}-{base}")


#: reserved codec name for service-level (micro-batch) entries.
SERVICE_CODEC = "__service__"


# ---------------------------------------------------------------------------
# Shared execution knobs + codec-declared knobs
# ---------------------------------------------------------------------------
def _thread_grid() -> tuple[int, ...]:
    """Thread-count candidates, capped at the machine's core count."""
    cores = os.cpu_count() or 1
    grid = tuple(t for t in (1, 2, 4, 8) if t <= cores)
    return grid if grid else (1,)


def execution_knobs() -> tuple[Knob, ...]:
    """Knobs every codec shares: which device family, how many threads.

    Byte-neutral by the portability guarantee — every adapter produces
    bit-identical streams, so these are the knobs the tuner can flip
    freely without tripping the digest guard.
    """
    return (
        Knob("adapter", ("serial", "openmp"), "serial"),
        Knob("threads", _thread_grid(), 1),
    )


def knob_space_for(codec: str) -> KnobSpace:
    """The search space for one codec: execution + declared knobs."""
    from repro.compressors import codec_knob_declarations

    knobs = list(execution_knobs())
    for decl in codec_knob_declarations(codec):
        knobs.append(Knob(
            name=str(decl["name"]),
            values=tuple(decl["values"]),
            default=decl["default"],
            stream_affecting=bool(decl.get("stream_affecting", False)),
        ))
    return KnobSpace(knobs)


def service_knob_space() -> KnobSpace:
    """Micro-batch limits + worker device — the serve-level search grid.

    ``max_latency_ms``/``max_bytes`` bound *when* a batch flushes, so
    they change scheduling, never bytes: every answer is byte-identical
    to the single-shot codec call (the serve conformance property), so
    the whole space is byte-neutral.
    """
    return KnobSpace((
        Knob("max_batch", (8, 16, 32, 64), 16),
        Knob("max_bytes", (1 << 20, 4 << 20, 16 << 20), 4 << 20),
        Knob("max_latency_ms", (1.0, 2.0, 5.0), 2.0),
        Knob("adapter", ("serial", "openmp"), "serial"),
        Knob("threads", _thread_grid(), 1),
    ))
