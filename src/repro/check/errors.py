"""Sanitizer error taxonomy (HPDR-San runtime rules).

Every runtime finding is an exception class carrying a stable ``rule``
id, so tests and CI can match on the rule rather than message text:

==========  ==========================================================
SAN-RACE    overlapping writes between concurrently-executed blocks
            (halo races), or block outputs that depend on execution
            partitioning (cross-block reads)
SAN-ALIAS   functor outputs aliasing adapter/context scratch without
            declaring ``reuses_output``
SAN-EVICT   context buffer/scratch/object used after cache eviction
            (raised by :mod:`repro.core.context`; re-exported here)
SAN-CTX     shape/dtype-mismatched context reuse — one buffer name
            repeatedly rebound, i.e. the context key does not capture
            the data characteristics
SAN-LEAK    context byte accounting grows without bound across
            same-shaped calls (steady-state allocation leak)
==========  ==========================================================

All subclass :class:`AssertionError` so a sanitized test run fails the
same way a plain assert would, and each message leads with its rule id
and ends with a fix hint.
"""

from __future__ import annotations

from repro.core.context import UseAfterEvictError  # noqa: F401  (re-export)


class SanitizerError(AssertionError):
    """Base class for HPDR-San runtime findings."""

    rule = "SAN"
    hint = ""

    def __init__(self, message: str) -> None:
        hint = f" (fix: {self.hint})" if self.hint else ""
        super().__init__(f"[{self.rule}] {message}{hint}")


class HaloRaceError(SanitizerError):
    rule = "SAN-RACE"
    hint = (
        "make the functor pure per block — write only to the block's own "
        "output, read only its own input (+halo the abstraction attached)"
    )


class ScratchAliasError(SanitizerError):
    rule = "SAN-ALIAS"
    hint = (
        "declare `reuses_output = True` on the functor so adapters copy "
        "results before the scratch is rewritten, or return fresh memory"
    )


class ContextThrashError(SanitizerError):
    rule = "SAN-CTX"
    hint = (
        "include every varying data characteristic (shape, dtype, config) "
        "in the ContextCache key instead of rebinding one buffer name"
    )


class SteadyStateLeakError(SanitizerError):
    rule = "SAN-LEAK"
    hint = (
        "route the allocation through ctx.buffer()/ctx.scratch() with a "
        "stable name so the steady state reuses it"
    )
