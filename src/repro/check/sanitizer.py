"""HPDR-San runtime sanitizer ("tsan mode") — a wrapping device adapter.

:class:`SanitizingAdapter` wraps a real backend (serial or openmp) and
re-executes every GEM batch in *shadow*: the group batch is copied, the
functor is applied one block-group at a time, and a per-group shadow
write-set is derived by byte-diffing the working batch against a
pristine snapshot after each apply.  From those write-sets it reports:

* **SAN-RACE** — a group wrote rows it does not own (a halo race: under
  concurrent execution another group reads or writes those rows), or
  the functor's output changes when the batch is partitioned
  differently (cross-block reads — results would depend on the
  adapter's scheduling).
* **SAN-ALIAS** — consecutive applies return memory that overlaps
  (scratch-backed outputs) while the functor does not declare
  ``reuses_output``; a batching adapter would silently overwrite
  results it has not yet copied.

The wrapper is transparent: the *inner* adapter produces the returned
result (and its trace records), so sanitized runs are bit-identical to
unsanitized ones — just slower.  Enable globally with ``HPDR_SAN=1``
(``repro.adapters.get_adapter`` auto-wraps serial/openmp), per-run with
the CLI ``--sanitize`` flag, or per-test with the ``sanitizing_adapter``
fixture.

Shadow execution costs ~3 extra batch passes per GEM call; it is never
active unless explicitly requested, keeping the steady-state perf record
intact (the perf gate refuses to run under ``HPDR_SAN``).
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.adapters.base import DeviceAdapter
from repro.check.errors import HaloRaceError, ScratchAliasError
from repro.core.functor import DomainFunctor
from repro.trace.tracer import Span, TRACER as _TRACER

#: Families the shadow machinery understands (real CPU concurrency).
SANITIZABLE_FAMILIES = ("serial", "openmp")


def sanitize_enabled() -> bool:
    """True when the ``HPDR_SAN`` environment variable requests tsan mode."""
    return os.environ.get("HPDR_SAN", "") not in ("", "0")


def wrap_if_enabled(adapter: DeviceAdapter) -> DeviceAdapter:
    """Wrap ``adapter`` in a :class:`SanitizingAdapter` when requested.

    No-op when ``HPDR_SAN`` is unset, the family has no shadow support
    (simulated GPU backends), or the adapter is already sanitizing.
    """
    if (
        sanitize_enabled()
        and adapter.family in SANITIZABLE_FAMILIES
        and not isinstance(adapter, SanitizingAdapter)
    ):
        return SanitizingAdapter(adapter)
    return adapter


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if np.issubdtype(a.dtype, np.inexact):
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


class SanitizingAdapter(DeviceAdapter):
    """Shadow-memory sanitizer around a serial/openmp adapter.

    Parameters
    ----------
    inner:
        The adapter that actually executes (and records trace/timing).
    max_shadow_groups:
        Granularity of the shadow schedule.  The batch is split into at
        most this many contiguous group-chunks; write-set attribution
        and the alias check run per chunk, and the purity check compares
        this partitioning against the inner adapter's.  Higher = finer
        race attribution, linearly more diff work.
    """

    def __init__(self, inner: DeviceAdapter, max_shadow_groups: int = 8) -> None:
        if inner.family not in SANITIZABLE_FAMILIES:
            raise ValueError(
                f"SanitizingAdapter supports {SANITIZABLE_FAMILIES}, "
                f"got family {inner.family!r}"
            )
        if max_shadow_groups < 1:
            raise ValueError("max_shadow_groups must be >= 1")
        self.inner = inner
        self.family = inner.family
        self.max_shadow_groups = max_shadow_groups
        #: GEM batches checked so far (so tests can assert coverage).
        self.checked_batches = 0

    # -- transparent delegation ------------------------------------------
    @property
    def spec(self) -> Any:
        return self.inner.spec

    @property
    def trace(self) -> Any:
        return self.inner.trace

    def __getattr__(self, name: str) -> Any:
        # Anything not overridden (num_threads, close, strict, …)
        # behaves exactly like the wrapped adapter.
        return getattr(self.inner, name)

    @property
    def name(self) -> str:
        return f"san({self.inner.name})"

    def parallel_width(self) -> int:
        return self.inner.parallel_width()

    def map_tasks(self, fn, items) -> list:
        return self.inner.map_tasks(fn, items)

    def synchronize(self) -> None:
        self.inner.synchronize()

    def execute_domain(self, functor: DomainFunctor, data: Any) -> Any:
        # DEM stages run whole-domain with global sync between them —
        # sequential on every backend, so there is nothing to race.
        return self.inner.execute_domain(functor, data)

    def simulated_time(self) -> float:
        return self.inner.simulated_time()

    def reset_trace(self) -> None:
        self.inner.reset_trace()

    # -- the sanitized execution path ------------------------------------
    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        if (
            not isinstance(batch, np.ndarray)
            or batch.ndim < 1
            or batch.shape[0] == 0
            or batch.size == 0
        ):
            return self.inner.execute_group_batch(functor, batch)
        # Shadow work gets its own span (cat "san") so traced sanitized
        # runs attribute the ~3x batch-pass overhead to the sanitizer,
        # not the codec; the inner adapter emits the real GEM span.
        if _TRACER.enabled:
            with Span(_TRACER, f"san.shadow.{functor.name}", "san",
                      {"groups": int(batch.shape[0])}):
                shadow = self._shadow_execute(functor, batch)
        else:
            shadow = self._shadow_execute(functor, batch)
        result = self.inner.execute_group_batch(functor, batch)
        res_arr = np.asarray(result)
        if (
            shadow is None
            or res_arr.ndim == 0
            or res_arr.shape[0] != batch.shape[0]
        ):
            # Not block-count-preserving (per shadow chunk, or on the
            # full batch): the abstraction layer rejects such functors
            # itself, with a clearer error than a shadow shape mismatch
            # would give.
            return result
        if not _bitwise_equal(np.asarray(shadow), np.asarray(result)):
            raise HaloRaceError(
                f"functor {functor.name!r} produced different results under "
                f"a different group partitioning — block outputs depend on "
                f"other blocks (cross-block reads or scheduling-dependent "
                f"state), which races under concurrent execution"
            )
        self.checked_batches += 1
        return result

    def _shadow_execute(self, functor, batch: np.ndarray) -> np.ndarray | None:
        """Per-group execution with write-set attribution.

        Runs on private copies so a misbehaving functor can never
        corrupt the caller's batch through the shadow pass.  Returns
        ``None`` when the functor is not block-count-preserving (each
        chunk must map n blocks to n outputs) — the purity comparison
        is meaningless there and the abstraction layer rejects such
        functors with its own validation error.
        """
        nblocks = batch.shape[0]
        snap = np.array(batch, copy=True)  # pristine, C-contiguous
        work = snap.copy()                 # the shadow's working memory
        work_rows = work.reshape(nblocks, -1).view(np.uint8)
        snap_rows = snap.reshape(nblocks, -1).view(np.uint8)

        nchunks = min(nblocks, self.max_shadow_groups)
        bounds = np.linspace(0, nblocks, nchunks + 1, dtype=np.intp)
        attributed = np.zeros(nblocks, dtype=bool)
        reuses = bool(getattr(functor, "reuses_output", False))

        outs: list[np.ndarray] = []
        prev: np.ndarray | None = None
        for c in range(nchunks):
            lo, hi = int(bounds[c]), int(bounds[c + 1])
            out = functor.apply(work[lo:hi])
            out_arr = np.asarray(out)
            if out_arr.ndim == 0 or out_arr.shape[0] != hi - lo:
                return None
            if (
                prev is not None
                and not reuses
                and np.may_share_memory(out, prev)
            ):
                raise ScratchAliasError(
                    f"functor {functor.name!r} returned memory overlapping "
                    f"its previous apply's output (groups [{lo}:{hi}) vs the "
                    f"chunk before) without declaring reuses_output — a "
                    f"batching adapter would overwrite results it has not "
                    f"yet copied"
                )
            prev = out
            outs.append(np.array(out, copy=True))

            # Shadow write-set: rows whose bytes changed under this apply.
            written = (work_rows != snap_rows).any(axis=1)
            new_writes = written & ~attributed
            foreign = np.flatnonzero(new_writes[:lo]).tolist() + [
                int(r) + hi for r in np.flatnonzero(new_writes[hi:])
            ]
            if foreign:
                raise HaloRaceError(
                    f"functor {functor.name!r} executing groups [{lo}:{hi}) "
                    f"wrote into foreign group rows {foreign[:8]}"
                    f"{'…' if len(foreign) > 8 else ''} — overlapping "
                    f"write-sets between concurrently-executed blocks "
                    f"(halo race)"
                )
            attributed |= written
        return np.concatenate(outs, axis=0)
