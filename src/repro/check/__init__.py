"""HPDR-San: correctness tooling for the HPDR reproduction.

Two modes (DESIGN.md §3.2):

* runtime sanitizer — :class:`SanitizingAdapter` ("tsan mode",
  ``HPDR_SAN=1`` / ``--sanitize``), plus the CMM steady-state checks in
  :mod:`repro.check.cmm`;
* static lint — :func:`lint_paths` (``scripts/hpdrlint.py``).

This package is imported lazily by the adapters layer: when
``HPDR_SAN`` is unset nothing here loads, so the tooling costs zero on
production paths.
"""

from repro.check.cmm import CMMWatch, assert_steady_state
from repro.check.errors import (
    ContextThrashError,
    HaloRaceError,
    SanitizerError,
    ScratchAliasError,
    SteadyStateLeakError,
    UseAfterEvictError,
)
from repro.check.lint import Finding, format_findings, lint_paths, lint_source
from repro.check.sanitizer import (
    SANITIZABLE_FAMILIES,
    SanitizingAdapter,
    sanitize_enabled,
    wrap_if_enabled,
)

__all__ = [
    "CMMWatch",
    "SANITIZABLE_FAMILIES",
    "ContextThrashError",
    "Finding",
    "HaloRaceError",
    "SanitizerError",
    "SanitizingAdapter",
    "ScratchAliasError",
    "SteadyStateLeakError",
    "UseAfterEvictError",
    "assert_steady_state",
    "format_findings",
    "lint_paths",
    "lint_source",
    "sanitize_enabled",
    "wrap_if_enabled",
]
