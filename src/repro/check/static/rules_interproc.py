"""HPL3xx — interprocedural hot-path rules.

HPL001/HPL003 are syntactic: they flag allocations and out-less ufuncs
*textually inside* a ``@hot_path`` body.  A hot function calling a
same-module (or explicitly imported) helper that allocates passes them
silently — the allocation is syntactically elsewhere.  This pack walks
the call graph from every ``@hot_path`` root:

=======  ==============================================================
HPL301   the hot function transitively reaches a helper containing an
         HPL001-class allocation (``np.zeros``/``.copy()``/…)
HPL302   the hot function transitively reaches a helper calling a
         ufunc without ``out=``
=======  ==============================================================

Findings anchor at the **call site inside the hot function** (that is
the edge the author controls) and name the offending helper and line.
Suppressions are honored at both ends: a ``disable=HPL001`` (or
``HPL301``) on the helper's allocation line, or a ``disable=HPL301`` at
the hot call site, silences the finding — existing documented cold-path
fallbacks stay documented exactly once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.lint import (
    Finding,
    _METHOD_ALLOC,
    _NP_ALLOC,
    _NP_UFUNC_OUT,
    is_suppressed,
)
from repro.check.static.callgraph import FuncInfo, ModuleUnit, ProjectIndex
from repro.check.static.report import Emitter

__all__ = ["check_project", "RULES"]

RULES: dict[str, str] = {
    "HPL301": "@hot_path transitively calls an allocating helper",
    "HPL302": "@hot_path transitively calls a ufunc helper without out=",
}

#: BFS depth bound — call chains deeper than this are vanishingly rare
#: and cutting them keeps the walk linear in practice.
MAX_DEPTH = 8


@dataclass(frozen=True)
class _Offence:
    rule: str
    lineno: int
    what: str


def _suppressed_at(unit: ModuleUnit, node: ast.AST, rules: tuple[str, ...]
                   ) -> bool:
    lineno = getattr(node, "lineno", 1)
    end = getattr(node, "end_lineno", lineno) or lineno
    lines = set(range(lineno - 1, end + 1))
    stmt = unit.enclosing_statement(node)
    if stmt is not None:
        lines.update((stmt.lineno, stmt.lineno - 1))
    return any(is_suppressed(unit.suppressions, rule, lines)
               for rule in rules)


def _offences_in(info: FuncInfo) -> list[_Offence]:
    """HPL001/HPL003-class sites inside one helper, suppression-aware."""
    unit = info.module
    out: list[_Offence] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        qual = unit.qualified_name(node.func)
        np_name = qual.split(".", 1)[1] if qual and qual.startswith(
            "numpy.") else None
        has_out = any(kw.arg == "out" for kw in node.keywords)
        if np_name in _NP_ALLOC:
            if not _suppressed_at(unit, node, ("HPL001", "HPL301")):
                out.append(_Offence("HPL301", node.lineno,
                                    f"np.{np_name}()"))
        elif np_name in _NP_UFUNC_OUT and not has_out:
            if not _suppressed_at(unit, node, ("HPL003", "HPL302")):
                out.append(_Offence("HPL302", node.lineno,
                                    f"np.{np_name}() without out="))
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr in _METHOD_ALLOC:
            if node.func.attr == "astype" and any(
                    kw.arg == "copy" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False for kw in node.keywords):
                continue
            if not _suppressed_at(unit, node, ("HPL001", "HPL301")):
                out.append(_Offence("HPL301", node.lineno,
                                    f".{node.func.attr}()"))
    return out


def _calls_in(info: FuncInfo) -> list[ast.Call]:
    return [n for n in ast.walk(info.node) if isinstance(n, ast.Call)]


def check_project(index: ProjectIndex) -> list[Finding]:
    """Walk the call graph from every hot root; flag offending edges."""
    findings: list[Finding] = []
    offence_cache: dict[tuple[str, str], list[_Offence]] = {}

    def offences(info: FuncInfo) -> list[_Offence]:
        key = (str(info.module.path), info.qualname)
        if key not in offence_cache:
            offence_cache[key] = _offences_in(info)
        return offence_cache[key]

    for hot in sorted(index.hot_functions(),
                      key=lambda i: (str(i.module.path), i.qualname)):
        emitter = Emitter(hot.module)
        reported: set[tuple[int, str]] = set()
        # (callee, call site in the hot body, chain of names, depth)
        stack: list[tuple[FuncInfo, ast.Call, tuple[str, ...], int]] = []
        visited: set[tuple[str, str]] = set()
        for call in _calls_in(hot):
            callee = index.resolve_call(call, hot)
            if callee is None or callee.is_hot or callee.node is hot.node:
                continue
            stack.append((callee, call, (callee.qualname,), 1))
        while stack:
            callee, site, chain, depth = stack.pop()
            key = (str(callee.module.path), callee.qualname)
            if key in visited:
                continue
            visited.add(key)
            for off in offences(callee):
                dedup = (site.lineno, off.rule)
                if dedup in reported:
                    continue
                reported.add(dedup)
                where = f"{callee.module.path.name}:{off.lineno}"
                via = " -> ".join(chain)
                message = (
                    f"{hot.qualname}() is @hot_path but reaches "
                    f"{off.what} in {via} ({where})"
                )
                hint = (
                    "pass the ReductionContext down and draw from "
                    "ctx.buffer()/ctx.scratch() (or add out=), or hoist "
                    "the call off the hot path"
                    if off.rule == "HPL301"
                    else "thread an out= buffer through the helper or "
                         "hoist the ufunc result"
                )
                emitter.emit(site, off.rule, message, hint)
            if depth >= MAX_DEPTH:
                continue
            for call in _calls_in(callee):
                nxt = index.resolve_call(call, callee)
                if nxt is None or nxt.is_hot:
                    continue
                stack.append((nxt, site, chain + (nxt.qualname,), depth + 1))
        findings.extend(emitter.findings)
    return findings
