"""SARIF 2.1.0 emission for hpdrlint/Statica findings.

One run, one tool (``hpdrlint``), one result per finding.  The output
is the minimal valid subset GitHub code scanning consumes: rule
metadata on the driver, ``level: error`` results with a physical
location (repo-relative URI + start line/column) and a stable
``partialFingerprints`` entry so annotations survive unrelated line
drift.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.check.lint import Finding

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _rel_uri(path: str, root: Path) -> str:
    p = Path(path)
    try:
        return p.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def _fingerprint(finding: Finding) -> str:
    raw = f"{finding.rule}:{finding.path}:{finding.message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32]


def to_sarif(
    findings: list[Finding],
    rules: dict[str, str],
    root: Path,
    tool_version: str = "1.0.0",
) -> dict:
    """Build the SARIF 2.1.0 log object for ``findings``."""
    rule_ids = sorted(rules)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    driver_rules = [
        {
            "id": rid,
            "name": rid,
            "shortDescription": {"text": rules[rid]},
            "defaultConfiguration": {"level": "error"},
        }
        for rid in rule_ids
    ]
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index.get(finding.rule, -1),
                "level": "error",
                "message": {
                    "text": f"{finding.message}  [fix: {finding.hint}]"
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _rel_uri(finding.path, root),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "hpdrlint/v1": _fingerprint(finding)
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "hpdrlint",
                        "informationUri":
                            "https://github.com/hpdr/repro#hpdr-statica",
                        "version": tool_version,
                        "rules": driver_rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": root.resolve().as_uri() + "/"}
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: Path,
    findings: list[Finding],
    rules: dict[str, str],
    root: Path,
) -> None:
    path.write_text(
        json.dumps(to_sarif(findings, rules, root), indent=2) + "\n",
        encoding="utf-8",
    )
