"""Module index and interprocedural call graph for HPDR-Statica.

:class:`ModuleUnit` wraps one parsed source file with everything the
rule packs query repeatedly: an import table (local name → dotted
origin), a parent map (AST node → enclosing node), per-line suppression
sets, and every function/method definition keyed by qualified name.

:class:`ProjectIndex` spans the analyzed file set and resolves call
expressions to definitions, conservatively:

* bare names resolve to module-level functions of the same module, or
  through ``from x import y`` when module ``x`` is in the file set;
* ``self.m(...)`` resolves to method ``m`` of the enclosing class;
* ``mod.f(...)`` resolves through ``import repro.x as mod``;
* ``obj.m(...)`` resolves only when exactly **one** analyzed class
  defines method ``m`` (used by the executor-binding rule, where the
  dispatch sites are few and the method names distinctive).

Unresolvable calls resolve to nothing — the analyses stay quiet rather
than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.lint import parse_suppressions

__all__ = ["FuncInfo", "ModuleUnit", "ProjectIndex", "qualified_call_name"]


def _is_hot_decorator(dec: ast.expr) -> bool:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id == "hot_path"
    if isinstance(target, ast.Attribute):
        return target.attr == "hot_path"
    return False


@dataclass(eq=False)  # identity semantics: nodes are unique, sets hold them
class FuncInfo:
    """One function or method definition inside an analyzed module."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "ModuleUnit"
    class_name: str | None = None
    is_hot: bool = False

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def name(self) -> str:
        return self.node.name


class ModuleUnit:
    """One parsed module plus the lookup tables the rule packs share."""

    def __init__(self, path: Path, source: str,
                 module_name: str | None = None) -> None:
        self.path = path
        self.source = source
        self.module_name = module_name or _module_name_for(path)
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = parse_suppressions(source)
        self.parents: dict[ast.AST, ast.AST] = {}
        #: local name → dotted origin ("np" → "numpy",
        #: "sleep" → "time.sleep", "SharedMemory" →
        #: "multiprocessing.shared_memory.SharedMemory").
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self._index()

    # ------------------------------------------------------------------
    def _index(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info = FuncInfo(
                            qualname=f"{node.name}.{item.name}",
                            node=item, module=self,
                            class_name=node.name,
                            is_hot=any(_is_hot_decorator(d)
                                       for d in item.decorator_list),
                        )
                        self.functions[info.qualname] = info
        for item in self.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[item.name] = FuncInfo(
                    qualname=item.name, node=item, module=self,
                    is_hot=any(_is_hot_decorator(d)
                               for d in item.decorator_list),
                )

    # ------------------------------------------------------------------
    def enclosing_statement(self, node: ast.AST) -> ast.stmt | None:
        cur: ast.AST | None = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = self.parents.get(cur)
        return cur if isinstance(cur, ast.stmt) else None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        cur: ast.AST | None = node
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return cur
            cur = self.parents.get(cur)
        return None

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        cur: ast.AST | None = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def qualified_name(self, expr: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute through the import table.

        ``np.zeros`` → ``numpy.zeros``; bare ``open`` (no local import,
        no local def) → ``builtins.open``.
        """
        parts: list[str] = []
        cur = expr
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        head, rest = parts[0], parts[1:]
        origin = self.imports.get(head)
        if origin is not None:
            return ".".join([origin, *rest])
        if not rest and head not in self.functions and head not in self.classes:
            return f"builtins.{head}"
        return ".".join(parts)


def _module_name_for(path: Path) -> str:
    """Best-effort dotted module name (``repro.serve.net``) for a path."""
    parts = list(path.parts)
    for anchor in ("src",):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            dotted = parts[idx + 1:]
            if dotted:
                return ".".join(dotted)[:-3] if dotted[-1].endswith(".py") \
                    else ".".join(dotted)
    return path.stem


@dataclass
class ProjectIndex:
    """All analyzed modules plus cross-module call resolution."""

    modules: list[ModuleUnit] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name: dict[str, ModuleUnit] = {}
        #: method name → every (class, FuncInfo) that defines it.
        self._methods: dict[str, list[FuncInfo]] = {}

    def add(self, unit: ModuleUnit) -> None:
        self.modules.append(unit)
        self._by_name[unit.module_name] = unit
        for info in unit.functions.values():
            if info.class_name is not None:
                self._methods.setdefault(info.name, []).append(info)

    def module(self, dotted: str) -> ModuleUnit | None:
        return self._by_name.get(dotted)

    # ------------------------------------------------------------------
    def resolve_call(
        self,
        call: ast.Call,
        caller: FuncInfo,
        unique_methods: bool = False,
    ) -> FuncInfo | None:
        func = call.func
        unit = caller.module
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, unit)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" \
                    and caller.class_name is not None:
                return unit.functions.get(f"{caller.class_name}.{func.attr}")
            if isinstance(base, ast.Name):
                origin = unit.imports.get(base.id)
                if origin is not None:
                    target = self._by_name.get(origin)
                    if target is not None:
                        return target.functions.get(func.attr)
                    # ``from pkg import mod`` — origin is "pkg.mod".
                    return self._resolve_dotted(f"{origin}.{func.attr}")
            if unique_methods:
                candidates = self._methods.get(func.attr, [])
                if len(candidates) == 1:
                    return candidates[0]
        return None

    def resolve_ref(
        self,
        expr: ast.expr,
        unit: ModuleUnit,
        class_name: str | None = None,
    ) -> FuncInfo | None:
        """Resolve a bare callable *reference* (not a call) — the form
        executor dispatch sites pass: ``self.m``, ``worker.run_batch``,
        ``_job``.  Unique-method fallback is always on here: dispatch
        sites are few and their method names distinctive."""
        if isinstance(expr, ast.Name):
            return self._resolve_name(expr.id, unit)
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name) and base.id == "self" \
                    and class_name is not None:
                return unit.functions.get(f"{class_name}.{expr.attr}")
            if isinstance(base, ast.Name):
                origin = unit.imports.get(base.id)
                if origin is not None:
                    target = self._by_name.get(origin)
                    if target is not None:
                        return target.functions.get(expr.attr)
            candidates = self._methods.get(expr.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _resolve_name(self, name: str, unit: ModuleUnit) -> FuncInfo | None:
        info = unit.functions.get(name)
        if info is not None:
            return info
        origin = unit.imports.get(name)
        if origin is not None:
            return self._resolve_dotted(origin)
        return None

    def _resolve_dotted(self, dotted: str) -> FuncInfo | None:
        module_name, _, attr = dotted.rpartition(".")
        target = self._by_name.get(module_name)
        if target is not None:
            return target.functions.get(attr)
        return None

    # ------------------------------------------------------------------
    def hot_functions(self) -> list[FuncInfo]:
        return [
            info
            for unit in self.modules
            for info in unit.functions.values()
            if info.is_hot
        ]


def qualified_call_name(call: ast.Call, unit: ModuleUnit) -> str | None:
    """Dotted origin of a call's callee, or None."""
    return unit.qualified_name(call.func)
