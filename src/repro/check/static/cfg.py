"""Per-function control-flow graphs over Python AST.

:func:`build_cfg` lowers one ``FunctionDef``/``AsyncFunctionDef`` into
basic blocks connected by directed edges.  Blocks hold *elements*: a
simple statement contributes itself, a compound statement contributes
only its header expression (``If.test``, ``While.test``, ``For.iter``,
each ``withitem`` …) while its body is lowered into successor blocks.
Transfer functions therefore never need to descend into compound
bodies — iterating ``block.elements`` in order visits every evaluated
expression exactly once per path.

Approximations (all path-adding, so may-analyses stay sound):

* every block built inside a ``try`` body gets an edge to every
  handler head (any statement may raise);
* ``return``/``raise``/``break``/``continue`` inside ``try/finally``
  route through the innermost ``finally`` block, whose exit then leads
  both to the function exit and to the normal fall-through;
* nested function/class definitions are single elements (their bodies
  are separate CFGs).
"""

from __future__ import annotations

import ast

__all__ = ["Block", "CFG", "build_cfg"]


class Block:
    """One basic block: ordered elements plus successor/predecessor edges."""

    __slots__ = ("bid", "elements", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.elements: list[ast.AST] = []
        self.succs: list["Block"] = []
        self.preds: list["Block"] = []

    def link(self, succ: "Block") -> None:
        if succ not in self.succs:
            self.succs.append(succ)
            succ.preds.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(e).__name__ for e in self.elements)
        edges = ",".join(str(s.bid) for s in self.succs)
        return f"<Block {self.bid} [{kinds}] -> [{edges}]>"


class CFG:
    """Control-flow graph of one function: entry, exit, all blocks."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn = fn
        self.blocks: list[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def reachable(self) -> list[Block]:
        """Blocks reachable from the entry, in discovery order."""
        seen: list[Block] = []
        stack = [self.entry]
        marked = {self.entry.bid}
        while stack:
            block = stack.pop()
            seen.append(block)
            for succ in block.succs:
                if succ.bid not in marked:
                    marked.add(succ.bid)
                    stack.append(succ)
        return seen


class _Builder:
    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(fn)
        #: (loop_header, loop_after) for break/continue targets.
        self.loops: list[tuple[Block, Block]] = []
        #: innermost-last finally entry blocks for abrupt exits.
        self.finallies: list[Block] = []

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        end = self._stmts(self.cfg.fn.body, self.cfg.entry)
        if end is not None:
            end.link(self.cfg.exit)
        return self.cfg

    def _abrupt_target(self) -> Block:
        """Where return/raise jump: the innermost finally, else exit."""
        return self.finallies[-1] if self.finallies else self.cfg.exit

    def _stmts(self, stmts: list[ast.stmt], cur: Block | None) -> Block | None:
        for stmt in stmts:
            if cur is None:
                cur = self.cfg.new_block()  # dead code keeps its own island
            cur = self._stmt(stmt, cur)
        return cur

    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, cur: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._branch(cur, stmt.test, stmt.body, stmt.orelse)
        if isinstance(stmt, ast.While):
            return self._loop(cur, stmt.test, stmt.body, stmt.orelse,
                              header_elems=[stmt.test])
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(cur, None, stmt.body, stmt.orelse,
                              header_elems=[stmt.iter, stmt.target])
        if isinstance(stmt, ast.Try):
            return self._try(cur, stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                cur.elements.append(item)
            return self._stmts(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._match(cur, stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cur.elements.append(stmt)
            cur.link(self._abrupt_target())
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                cur.link(self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cur.link(self.loops[-1][0])
            return None
        # Simple statements — and nested definitions, kept opaque.
        cur.elements.append(stmt)
        return cur

    # ------------------------------------------------------------------
    def _branch(
        self,
        cur: Block,
        test: ast.expr,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
    ) -> Block | None:
        cur.elements.append(test)
        after = self.cfg.new_block()
        then_block = self.cfg.new_block()
        cur.link(then_block)
        then_end = self._stmts(body, then_block)
        if then_end is not None:
            then_end.link(after)
        if orelse:
            else_block = self.cfg.new_block()
            cur.link(else_block)
            else_end = self._stmts(orelse, else_block)
            if else_end is not None:
                else_end.link(after)
        else:
            cur.link(after)
        return after if after.preds else None

    def _loop(
        self,
        cur: Block,
        test: ast.expr | None,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        header_elems: list[ast.AST],
    ) -> Block:
        header = self.cfg.new_block()
        cur.link(header)
        header.elements.extend(header_elems)
        after = self.cfg.new_block()
        body_block = self.cfg.new_block()
        header.link(body_block)
        infinite = (
            isinstance(test, ast.Constant) and bool(test.value) is True
        )
        if not infinite:
            header.link(after)
        self.loops.append((header, after))
        body_end = self._stmts(body, body_block)
        self.loops.pop()
        if body_end is not None:
            body_end.link(header)
        if orelse:
            # ``else`` runs on normal loop exit; approximate by running
            # it between header-false and after.
            else_block = self.cfg.new_block()
            header.link(else_block)
            else_end = self._stmts(orelse, else_block)
            if else_end is not None:
                else_end.link(after)
        return after

    def _try(self, cur: Block, stmt: ast.Try) -> Block | None:
        finally_entry: Block | None = None
        if stmt.finalbody:
            finally_entry = self.cfg.new_block()
            self.finallies.append(finally_entry)

        body_block = self.cfg.new_block()
        cur.link(body_block)
        first_body_idx = len(self.cfg.blocks) - 1
        body_end = self._stmts(stmt.body, body_block)
        body_blocks = self.cfg.blocks[first_body_idx:]

        join = self.cfg.new_block()
        handler_heads: list[Block] = []
        for handler in stmt.handlers:
            head = self.cfg.new_block()
            handler_heads.append(head)
            handler_end = self._stmts(handler.body, head)
            if handler_end is not None:
                handler_end.link(join)
        # Any statement of the try body may raise into any handler.
        for block in body_blocks:
            for head in handler_heads:
                block.link(head)

        if stmt.orelse:
            if body_end is not None:
                else_block = self.cfg.new_block()
                body_end.link(else_block)
                else_end = self._stmts(stmt.orelse, else_block)
                if else_end is not None:
                    else_end.link(join)
        elif body_end is not None:
            body_end.link(join)

        if finally_entry is not None:
            self.finallies.pop()
            join.link(finally_entry)
            fin_end = self._stmts(stmt.finalbody, finally_entry)
            after = self.cfg.new_block()
            if fin_end is not None:
                fin_end.link(after)
                # Abrupt paths (return/raise routed into the finally)
                # leave the function after it runs.
                fin_end.link(self._abrupt_target())
            return after if after.preds else None
        return join if join.preds else None

    def _match(self, cur: Block, stmt: ast.Match) -> Block | None:
        cur.elements.append(stmt.subject)
        after = self.cfg.new_block()
        for case in stmt.cases:
            case_block = self.cfg.new_block()
            cur.link(case_block)
            case_block.elements.append(case.pattern)
            if case.guard is not None:
                case_block.elements.append(case.guard)
            case_end = self._stmts(case.body, case_block)
            if case_end is not None:
                case_end.link(after)
        cur.link(after)  # no case may match
        return after


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function definition into a :class:`CFG`."""
    return _Builder(fn).build()
