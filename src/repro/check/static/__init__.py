"""HPDR-Statica: interprocedural static analysis for HPDR contracts.

The package grows the syntactic linter (:mod:`repro.check.lint`) into a
real analysis core — per-function CFGs (:mod:`~repro.check.static.cfg`),
a forward-dataflow engine (:mod:`~repro.check.static.dataflow`), and a
project call graph (:mod:`~repro.check.static.callgraph`) — with three
rule packs on top:

* **async** (HPL101–HPL104) — event-loop safety of :mod:`repro.serve`;
* **lifetime** (HPL201–HPL203) — CMM buffer pin/release discipline and
  shared-memory reference trust;
* **interproc** (HPL301–HPL302) — HPL001/HPL003 extended through the
  call graph from every ``@hot_path`` root.

Entry points: :func:`analyze_paths` / :func:`analyze_source`; SARIF
output via :mod:`~repro.check.static.sarif`; grandfathering via
:mod:`~repro.check.static.baseline`.  Driven by
``scripts/hpdrlint.py`` and the ``statica`` CI job.
"""

from repro.check.static.baseline import (
    baseline_key,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.check.static.callgraph import FuncInfo, ModuleUnit, ProjectIndex
from repro.check.static.cfg import CFG, Block, build_cfg
from repro.check.static.dataflow import ForwardAnalysis, ReachingDefs
from repro.check.static.engine import (
    ALL_PACKS,
    ALL_RULES,
    RULE_PACKS,
    AnalysisResult,
    analyze_paths,
    analyze_source,
)
from repro.check.static.sarif import to_sarif, write_sarif

__all__ = [
    "ALL_PACKS",
    "ALL_RULES",
    "AnalysisResult",
    "Block",
    "CFG",
    "ForwardAnalysis",
    "FuncInfo",
    "ModuleUnit",
    "ProjectIndex",
    "RULE_PACKS",
    "ReachingDefs",
    "analyze_paths",
    "analyze_source",
    "baseline_key",
    "build_cfg",
    "load_baseline",
    "partition_findings",
    "to_sarif",
    "write_baseline",
    "write_sarif",
]
