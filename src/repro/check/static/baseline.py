"""Checked-in baseline of grandfathered findings.

A baseline lets a new rule pack land with the tree's pre-existing
findings acknowledged but not fatal: CI fails only on findings *not* in
the baseline, and the baseline is expected to shrink monotonically.
Entries match on ``(rule, repo-relative path, content hash of the
offending line)`` — renumbering from unrelated edits does not break the
match, while changing the offending line itself (the fix) retires the
entry.

The shipped baseline (``.hpdrlint-baseline.json``) is **empty**: every
finding the current packs raise on the tree is fixed or carries an
inline suppression with a reason.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.check.lint import Finding

__all__ = [
    "BASELINE_VERSION",
    "baseline_key",
    "load_baseline",
    "partition_findings",
    "write_baseline",
]

BASELINE_VERSION = 1


def _line_hash(path: Path, line: int) -> str:
    try:
        text = path.read_text(encoding="utf-8").splitlines()[line - 1]
    except (OSError, IndexError):
        text = ""
    digest = hashlib.sha256(text.strip().encode("utf-8")).hexdigest()
    return digest[:16]


def baseline_key(finding: Finding, root: Path) -> dict[str, str]:
    """Stable identity of one finding for baseline matching."""
    path = Path(finding.path)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return {
        "rule": finding.rule,
        "path": rel,
        "hash": _line_hash(path, finding.line),
    }


def _entry_id(entry: dict[str, str]) -> tuple[str, str, str]:
    return (entry["rule"], entry["path"], entry["hash"])


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """Load a baseline file; returns the set of grandfathered keys."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"in {path} (expected {BASELINE_VERSION})"
        )
    return {_entry_id(e) for e in data.get("findings", [])}


def write_baseline(path: Path, findings: list[Finding], root: Path) -> None:
    """Write the baseline capturing ``findings`` as grandfathered."""
    entries = [baseline_key(f, root) for f in findings]
    entries.sort(key=_entry_id)
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition_findings(
    findings: list[Finding],
    baseline: set[tuple[str, str, str]],
    root: Path,
) -> tuple[list[Finding], list[Finding]]:
    """Split into (new, grandfathered) against a loaded baseline."""
    fresh: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        key = _entry_id(baseline_key(finding, root))
        (known if key in baseline else fresh).append(finding)
    return fresh, known
