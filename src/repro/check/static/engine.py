"""HPDR-Statica driver: parse once, run every enabled rule pack.

:func:`analyze_paths` is the one entry point the CLI and tests use: it
collects ``.py`` files, parses each into a
:class:`~repro.check.static.callgraph.ModuleUnit`, runs the syntactic
core pack (:mod:`repro.check.lint`) plus the enabled dataflow packs,
and returns findings sorted by location together with suppression
warnings (unknown rule ids in ``disable=`` comments).

Pack registry::

    core        HPL001–HPL004  (syntactic, always on)
    async       HPL101–HPL104  (repro.serve async-safety)
    lifetime    HPL201–HPL203  (CMM buffer lifetime, shm trust)
    interproc   HPL301–HPL302  (hot-path rules through the call graph)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.check.lint import (
    RULES as CORE_RULES,
    Finding,
    lint_source,
    unknown_suppression_ids,
)
from repro.check.static import rules_async, rules_interproc, rules_lifetime
from repro.check.static.callgraph import ModuleUnit, ProjectIndex

__all__ = [
    "ALL_PACKS",
    "ALL_RULES",
    "AnalysisResult",
    "RULE_PACKS",
    "analyze_paths",
    "analyze_source",
]

#: pack name → rule table it contributes.
RULE_PACKS: dict[str, dict[str, str]] = {
    "core": CORE_RULES,
    "async": rules_async.RULES,
    "lifetime": rules_lifetime.RULES,
    "interproc": rules_interproc.RULES,
}
ALL_PACKS: tuple[str, ...] = tuple(RULE_PACKS)
#: every known rule id → description (suppression validation keys on it).
ALL_RULES: dict[str, str] = {
    rid: desc for pack in RULE_PACKS.values() for rid, desc in pack.items()
}


@dataclass
class AnalysisResult:
    """Findings plus non-fatal warnings from one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def sorted(self) -> "AnalysisResult":
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self


def _iter_py_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def _run_packs(
    units: list[ModuleUnit],
    packs: Iterable[str],
    result: AnalysisResult,
) -> None:
    enabled = set(packs)
    unknown = enabled - set(RULE_PACKS)
    if unknown:
        raise ValueError(
            f"unknown pack(s) {sorted(unknown)}; choose from "
            f"{sorted(RULE_PACKS)}"
        )
    if "core" in enabled:
        for unit in units:
            result.findings.extend(
                lint_source(unit.path, unit.source)
            )
    if "async" in enabled:
        for unit in units:
            result.findings.extend(rules_async.check_module(unit))
    if "lifetime" in enabled:
        for unit in units:
            result.findings.extend(rules_lifetime.check_module(unit))
    if enabled & {"async", "interproc"}:
        index = ProjectIndex()
        for unit in units:
            index.add(unit)
        if "async" in enabled:
            result.findings.extend(rules_async.check_project(index))
        if "interproc" in enabled:
            result.findings.extend(rules_interproc.check_project(index))


def analyze_paths(
    paths: Iterable[Path | str],
    packs: Iterable[str] = ALL_PACKS,
) -> AnalysisResult:
    """Analyze files/directories (recursively) with the given packs."""
    result = AnalysisResult()
    units: list[ModuleUnit] = []
    for file in _iter_py_files(paths):
        source = file.read_text(encoding="utf-8")
        unit = ModuleUnit(file, source)
        units.append(unit)
        for lineno, rule in unknown_suppression_ids(source, ALL_RULES):
            result.warnings.append(
                f"{file}:{lineno}: unknown rule id '{rule}' in suppression "
                f"comment (it suppresses nothing)"
            )
    _run_packs(units, packs, result)
    return result.sorted()


def analyze_source(
    path: Path | str,
    source: str,
    packs: Iterable[str] = ALL_PACKS,
) -> AnalysisResult:
    """Analyze one in-memory module (test and tooling convenience)."""
    result = AnalysisResult()
    unit = ModuleUnit(Path(path), source)
    for lineno, rule in unknown_suppression_ids(source, ALL_RULES):
        result.warnings.append(
            f"{path}:{lineno}: unknown rule id '{rule}' in suppression "
            f"comment (it suppresses nothing)"
        )
    _run_packs([unit], packs, result)
    return result.sorted()
