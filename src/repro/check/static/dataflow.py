"""Small forward-dataflow engine over :mod:`repro.check.static.cfg`.

:class:`ForwardAnalysis` is a classic worklist solver for monotone
frameworks joined by set union (may-analyses): subclasses implement
``transfer_element`` and the solver iterates to a fixed point.  Two
concrete analyses ship with it:

* :class:`ReachingDefs` — which ``(name, line)`` definitions reach each
  block entry; the substrate for alias/origin queries;
* :func:`may_states_at` — convenience wrapper returning the solved
  block-entry states keyed by block id.

State values must be hashable frozensets; the engine never interprets
their members, so analyses choose their own fact encoding (reaching
defs use ``(name, lineno)``, the lifetime pack uses released root
names).
"""

from __future__ import annotations

import ast
from typing import FrozenSet

from repro.check.static.cfg import CFG, Block

__all__ = ["ForwardAnalysis", "ReachingDefs", "assigned_names", "may_states_at"]

State = FrozenSet[object]


def assigned_names(node: ast.AST) -> list[str]:
    """Names bound by an assignment-like element (shallow)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.withitem) and node.optional_vars is not None:
        targets = [node.optional_vars]
    elif isinstance(node, ast.NamedExpr):
        targets = [node.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                e.id for e in target.elts if isinstance(e, ast.Name)
            )
    return names


class ForwardAnalysis:
    """Union-join forward may-analysis; subclass ``transfer_element``."""

    def initial(self, cfg: CFG) -> State:
        return frozenset()

    def transfer_element(self, element: ast.AST, state: State) -> State:
        raise NotImplementedError

    def transfer_block(self, block: Block, state: State) -> State:
        for element in block.elements:
            state = self.transfer_element(element, state)
        return state

    def solve(self, cfg: CFG) -> dict[int, State]:
        """Fixed point of block-entry states, keyed by block id."""
        entry_state: dict[int, State] = {cfg.entry.bid: self.initial(cfg)}
        worklist: list[Block] = [cfg.entry]
        while worklist:
            block = worklist.pop()
            in_state = entry_state.get(block.bid, frozenset())
            out_state = self.transfer_block(block, in_state)
            for succ in block.succs:
                merged = entry_state.get(succ.bid, frozenset()) | out_state
                if merged != entry_state.get(succ.bid):
                    entry_state[succ.bid] = merged
                    worklist.append(succ)
        return entry_state


class ReachingDefs(ForwardAnalysis):
    """Which ``(name, lineno)`` definitions may reach each block entry."""

    def transfer_element(self, element: ast.AST, state: State) -> State:
        names = assigned_names(element)
        if not names:
            return state
        lineno = getattr(element, "lineno", 0)
        killed = {
            fact for fact in state
            if isinstance(fact, tuple) and fact[0] in names
        }
        gen = {(name, lineno) for name in names}
        return (state - killed) | frozenset(gen)

    def defs_reaching(self, cfg: CFG, name: str) -> set[int]:
        """All definition lines of ``name`` that reach the exit block."""
        solved = self.solve(cfg)
        state = solved.get(cfg.exit.bid, frozenset())
        return {
            fact[1] for fact in state
            if isinstance(fact, tuple) and fact[0] == name
        }


def may_states_at(analysis: ForwardAnalysis, cfg: CFG) -> dict[int, State]:
    """Solve ``analysis`` over ``cfg``; block-id → entry state."""
    return analysis.solve(cfg)
