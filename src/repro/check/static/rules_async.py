"""HPL1xx — async-safety rules for the serve layer.

=======  ==============================================================
HPL101   blocking call inside an ``async def`` body: ``time.sleep``,
         sync socket/subprocess/file I/O, or a direct codec
         ``compress``/``decompress`` that should run on an executor
HPL102   ``await`` while holding a synchronous (``threading``) lock —
         every other coroutine needing the lock deadlocks against the
         suspended holder
HPL103   fire-and-forget task/future (``create_task``/
         ``ensure_future``/``run_in_executor``) whose result is never
         awaited, stored, returned, or given a done-callback —
         exceptions vanish and completion is unobservable
HPL104   a function dispatched to an executor mutates ``self`` state
         that event-loop-side (async or loop-thread) methods of the
         same class also mutate — a cross-thread data race
=======  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import Finding
from repro.check.static.callgraph import FuncInfo, ModuleUnit, ProjectIndex
from repro.check.static.report import Emitter

__all__ = ["check_module", "check_project", "RULES"]

RULES: dict[str, str] = {
    "HPL101": "blocking call inside async def (stalls the event loop)",
    "HPL102": "await while holding a synchronous lock (deadlock-prone)",
    "HPL103": "fire-and-forget task/future: result never awaited or checked",
    "HPL104": "executor-bound function mutates event-loop-shared state",
}

#: dotted call targets that block the calling thread.
_BLOCKING_QUALNAMES = {
    "time.sleep",
    "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
    "urllib.request.urlopen",
    "builtins.open", "builtins.input",
    "os.system", "os.waitpid",
    "shutil.copyfile", "shutil.copytree", "shutil.rmtree",
}
#: codec entry points that must reach an executor, not the loop thread.
_CODEC_METHODS = {"compress", "decompress", "compress_batch",
                  "decompress_batch"}
#: constructors of synchronous locks.
_SYNC_LOCK_QUALNAMES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
}
_ASYNC_LOCK_QUALNAMES = {
    "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
    "asyncio.BoundedSemaphore",
}
_SPAWN_ATTRS = {"create_task", "ensure_future", "run_in_executor"}


def _walk_excluding_defs(root: ast.AST) -> "Iterator[ast.AST]":
    """Yield descendants of ``root`` without entering nested defs."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _async_functions(unit: ModuleUnit) -> list[ast.AsyncFunctionDef]:
    return [n for n in ast.walk(unit.tree)
            if isinstance(n, ast.AsyncFunctionDef)]


# ---------------------------------------------------------------------------
# HPL101 — blocking calls in async bodies
# ---------------------------------------------------------------------------
#: awaiting combinators: a coroutine-producing call handed to one of
#: these is consumed asynchronously, not run on the loop thread.
_GATHER_QUALNAMES = {
    "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
    "asyncio.create_task", "asyncio.ensure_future", "asyncio.as_completed",
}


def _consumed_async(unit: ModuleUnit, node: ast.Call) -> bool:
    """True when the call is awaited or fed to an asyncio combinator."""
    cur: ast.AST | None = node
    while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
        parent = unit.parents.get(cur)
        if isinstance(parent, ast.Await):
            return True
        if isinstance(parent, ast.Call) and parent is not node:
            qual = unit.qualified_name(parent.func)
            if qual in _GATHER_QUALNAMES or (
                    isinstance(parent.func, ast.Attribute)
                    and parent.func.attr in _SPAWN_ATTRS):
                return True
        cur = parent
    return False


def _check_blocking(unit: ModuleUnit, fn: ast.AsyncFunctionDef,
                    emitter: Emitter) -> None:
    for node in _walk_excluding_defs(fn):
        if not isinstance(node, ast.Call):
            continue
        qual = unit.qualified_name(node.func)
        if qual in _BLOCKING_QUALNAMES:
            emitter.emit(
                node, "HPL101",
                f"{qual}() blocks the event loop inside async "
                f"def {fn.name}()",
                "await an async equivalent, or move the call to "
                "loop.run_in_executor()",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _CODEC_METHODS
            and not _consumed_async(unit, node)
        ):
            emitter.emit(
                node, "HPL101",
                f"direct codec .{node.func.attr}() runs a whole "
                f"reduction on the event loop in async def {fn.name}()",
                "submit through the service/worker pool "
                "(await svc.submit(...)) or run_in_executor",
            )


# ---------------------------------------------------------------------------
# HPL102 — await under a synchronous lock
# ---------------------------------------------------------------------------
def _sync_lock_names(unit: ModuleUnit) -> tuple[set[str], set[str]]:
    """(lock-ish simple names, async-lock simple names) in the module.

    Tracks both locals (``lock = threading.Lock()``) and instance
    attributes (``self._lock = threading.Lock()`` → ``_lock``).
    """
    sync_names: set[str] = set()
    async_names: set[str] = set()
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value,
                                                              ast.Call):
            continue
        qual = unit.qualified_name(node.value.func)
        bucket = None
        if qual in _SYNC_LOCK_QUALNAMES:
            bucket = sync_names
        elif qual in _ASYNC_LOCK_QUALNAMES:
            bucket = async_names
        if bucket is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                bucket.add(target.id)
            elif isinstance(target, ast.Attribute):
                bucket.add(target.attr)
    return sync_names, async_names


def _lock_simple_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _check_await_under_lock(unit: ModuleUnit, fn: ast.AsyncFunctionDef,
                            emitter: Emitter,
                            sync_locks: set[str],
                            async_locks: set[str]) -> None:
    for node in _walk_excluding_defs(fn):
        if not isinstance(node, ast.With):
            continue
        held = None
        for item in node.items:
            name = _lock_simple_name(item.context_expr)
            if name is None or name in async_locks:
                continue
            qual = (unit.qualified_name(item.context_expr.func)
                    if isinstance(item.context_expr, ast.Call) else None)
            lockish = (
                name in sync_locks
                or qual in _SYNC_LOCK_QUALNAMES
                or "lock" in name.lower()
                or "mutex" in name.lower()
            )
            if lockish:
                held = name
                break
        if held is None:
            continue
        for inner in _walk_excluding_defs(node):
            if isinstance(inner, ast.Await):
                emitter.emit(
                    inner, "HPL102",
                    f"await inside `with {held}:` suspends while "
                    f"holding a synchronous lock",
                    "use asyncio.Lock with `async with`, or release "
                    "the lock before awaiting",
                )


# ---------------------------------------------------------------------------
# HPL103 — fire-and-forget tasks/futures
# ---------------------------------------------------------------------------
def _is_spawn_call(unit: ModuleUnit, call: ast.Call) -> bool:
    qual = unit.qualified_name(call.func)
    if qual in ("asyncio.create_task", "asyncio.ensure_future"):
        return True
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr in _SPAWN_ATTRS)


def _name_is_used(fn: ast.AST, name: str, binding: ast.AST) -> bool:
    """Any Load of ``name`` in ``fn`` besides its binding target."""
    for node in ast.walk(fn):
        if (isinstance(node, ast.Name) and node.id == name
                and isinstance(node.ctx, ast.Load) and node is not binding):
            return True
    return False


def _check_fire_and_forget(unit: ModuleUnit, fn: ast.AST,
                           emitter: Emitter) -> None:
    for node in _walk_excluding_defs(fn):
        if not isinstance(node, ast.Call) or not _is_spawn_call(unit, node):
            continue
        if isinstance(unit.parents.get(node), ast.Await):
            continue  # awaited in place
        stmt = unit.enclosing_statement(node)
        spawn = (node.func.attr if isinstance(node.func, ast.Attribute)
                 else unit.qualified_name(node.func) or "spawn")
        if isinstance(stmt, ast.Expr) and stmt.value is node:
            emitter.emit(
                node, "HPL103",
                f"{spawn}(...) result discarded: exceptions are lost "
                f"and completion is unobservable",
                "await it, keep the handle and add_done_callback(), or "
                "gather it at shutdown",
            )
            continue
        if isinstance(stmt, ast.Assign) and stmt.value is node \
                and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            if not _name_is_used(fn, target, stmt.targets[0]):
                emitter.emit(
                    node, "HPL103",
                    f"{spawn}(...) bound to '{target}' but never "
                    f"awaited, returned, or given a done-callback",
                    "await the handle or attach add_done_callback() "
                    "so failures surface",
                )


# ---------------------------------------------------------------------------
# HPL104 — executor-bound mutation of loop-shared state (project-wide)
# ---------------------------------------------------------------------------
def _executor_targets(unit: ModuleUnit, index: ProjectIndex) -> list[FuncInfo]:
    """Every function the module dispatches to an executor."""
    targets: list[FuncInfo] = []
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func,
                                                            ast.Attribute):
            continue
        callee_expr: ast.expr | None = None
        if node.func.attr == "run_in_executor" and len(node.args) >= 2:
            callee_expr = node.args[1]
        elif node.func.attr == "submit" and node.args:
            base = _lock_simple_name(node.func.value)
            if base and ("executor" in base.lower() or "pool" in base.lower()):
                callee_expr = node.args[0]
        if callee_expr is None:
            continue
        enclosing_class = unit.enclosing_class(node)
        info = index.resolve_ref(
            callee_expr, unit,
            enclosing_class.name if enclosing_class else None,
        )
        if info is not None:
            targets.append(info)
    return targets


def _method_closure(index: ProjectIndex, roots: list[FuncInfo]
                    ) -> set[FuncInfo]:
    """Roots plus same-class methods they transitively call."""
    closure: set[FuncInfo] = set()
    stack = list(roots)
    while stack:
        info = stack.pop()
        if info in closure:
            continue
        closure.add(info)
        if info.class_name is None:
            # Module functions: follow bare-name and self-free calls.
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    nxt = info.module.functions.get(
                        node.func.id) if isinstance(node.func,
                                                    ast.Name) else None
                    if nxt is None and isinstance(node.func, ast.Attribute):
                        nxt = index.resolve_ref(node.func, info.module)
                    if nxt is not None:
                        stack.append(nxt)
            continue
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"):
                nxt = info.module.functions.get(
                    f"{info.class_name}.{node.func.attr}")
                if nxt is not None:
                    stack.append(nxt)
    return closure


def _self_mutations(fn: ast.AST) -> dict[str, ast.stmt]:
    """attr name → first statement assigning ``self.<attr>`` in ``fn``."""
    out: dict[str, ast.stmt] = {}
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in out):
                out[target.attr] = node
    return out


_LIFECYCLE_METHODS = {"__init__", "__post_init__"}


def check_project(index: ProjectIndex) -> list[Finding]:
    """HPL104 over the whole file set (dispatch and target may live in
    different modules)."""
    bound_roots: list[FuncInfo] = []
    for unit in index.modules:
        bound_roots.extend(_executor_targets(unit, index))
    if not bound_roots:
        return []
    closure = _method_closure(index, bound_roots)
    bound_by_class: dict[tuple[str, str], set[str]] = {}
    for info in closure:
        if info.class_name is not None:
            bound_by_class.setdefault(
                (str(info.module.path), info.class_name), set()
            ).add(info.name)

    findings: list[Finding] = []
    for info in sorted(closure, key=lambda i: (str(i.module.path),
                                               i.qualname)):
        if info.class_name is None:
            continue
        bound_here = bound_by_class[(str(info.module.path), info.class_name)]
        mutated = _self_mutations(info.node)
        if not mutated:
            continue
        emitter = Emitter(info.module)
        for other in info.module.functions.values():
            if (other.class_name != info.class_name
                    or other.name in bound_here
                    or other.name in _LIFECYCLE_METHODS):
                continue
            other_mutations = _self_mutations(other.node)
            shared = set(mutated) & set(other_mutations)
            for attr in sorted(shared):
                emitter.emit(
                    mutated[attr], "HPL104",
                    f"executor-bound {info.qualname}() mutates "
                    f"self.{attr}, also mutated by loop-side "
                    f"{other.qualname}() — cross-thread race",
                    "confine the attribute to one thread, or marshal "
                    "updates through loop.call_soon_threadsafe()",
                )
        findings.extend(emitter.findings)
    return findings


# ---------------------------------------------------------------------------
def check_module(unit: ModuleUnit) -> list[Finding]:
    """Run HPL101–HPL103 over one module."""
    emitter = Emitter(unit)
    async_fns = _async_functions(unit)
    if async_fns:
        sync_locks, async_locks = _sync_lock_names(unit)
        for fn in async_fns:
            _check_blocking(unit, fn, emitter)
            _check_await_under_lock(unit, fn, emitter, sync_locks,
                                    async_locks)
            _check_fire_and_forget(unit, fn, emitter)
    # HPL103 also applies to sync functions spawning executor work.
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.FunctionDef):
            _check_fire_and_forget(unit, node, emitter)
    return emitter.findings
