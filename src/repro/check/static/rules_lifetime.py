"""HPL2xx — CMM buffer-lifetime and shared-memory-trust rules.

=======  ==============================================================
HPL201   a ``ctx.buffer()``/``ctx.scratch()`` view escapes its
         pin/release region: returned from the function that pinned
         the context, stored on ``self``, yielded, or appended to a
         long-lived container — the view outlives eviction and reads
         poison (the static twin of runtime SAN-EVICT)
HPL202   a context-derived value is used after a possible
         ``release()``/``evict()``/``invalidate()``/``clear()`` on
         *some* CFG path (forward may-analysis over the function CFG)
HPL203   ``SharedMemory(name=...)`` attached from peer-supplied input
         with no validation (no guarding raise) before the attach —
         a malformed reference maps arbitrary segments
=======  ==============================================================

Value tracking is name-based: roots are context variables obtained via
``<cache>.get(...)`` (pin-local) or received as parameters; derived
values are ``root.buffer/scratch/object(...)`` results and their
slice/view aliases.  ``bytes(buf)``/``buf.copy()``/``buf.tobytes()``
produce fresh objects and drop out of tracking.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import Finding
from repro.check.static.callgraph import ModuleUnit
from repro.check.static.cfg import build_cfg
from repro.check.static.dataflow import ForwardAnalysis, State
from repro.check.static.report import Emitter

__all__ = ["check_module", "RULES"]

RULES: dict[str, str] = {
    "HPL201": "CMM buffer view escapes its pin/release region",
    "HPL202": "context value used after a possible release/evict on a path",
    "HPL203": "shared-memory segment attached from unvalidated peer input",
}

_BUFFER_METHODS = {"buffer", "scratch"}
_DERIVE_METHODS = {"buffer", "scratch", "object", "get_object"}
_VIEW_METHODS = {"view", "reshape", "ravel", "transpose", "astype"}
_RELEASE_METHODS = {"release", "evict"}
_CLEAR_METHODS = {"clear"}


def _functions(
    unit: ModuleUnit,
) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    for node in ast.walk(unit.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_excluding_defs(root: ast.AST) -> "Iterator[ast.AST]":
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _base_name(expr: ast.expr) -> str | None:
    """Leftmost Name of a dotted/subscripted expression."""
    while isinstance(expr, (ast.Attribute, ast.Subscript, ast.Call)):
        expr = expr.func if isinstance(expr, ast.Call) else expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _dotted_text(expr: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
    return ".".join(reversed(parts)).lower()


def _is_cache_get(value: ast.expr) -> bool:
    """``<something cache-ish>.get(...)`` — the context pin site."""
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "get"
        and "cache" in _dotted_text(value.func.value)
    )


def _peel_views(expr: ast.expr) -> ast.expr:
    """Strip slice/view wrappers: ``b[:4]``/``b.reshape(..)`` → ``b``."""
    while True:
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        elif isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr in _VIEW_METHODS:
            expr = expr.func.value
        else:
            return expr


def _single_name_target(stmt: ast.AST) -> tuple[str, ast.expr] | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
            and isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id, stmt.value
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name) \
            and stmt.value is not None:
        return stmt.target.id, stmt.value
    if isinstance(stmt, ast.NamedExpr) and isinstance(stmt.target, ast.Name):
        return stmt.target.id, stmt.value
    return None


class _ValueMap:
    """Flow-insensitive roots/derivations for one function."""

    def __init__(self, fn: ast.AST) -> None:
        #: ctx var name → "local-pin" | "param" | "attr"
        self.ctx_vars: dict[str, str] = {}
        #: derived var name → root ctx var name (or itself for buffers
        #: drawn off parameter contexts).
        self.derived_root: dict[str, str] = {}
        #: buffer var name → origin kind of its root context.
        self.buffers: dict[str, str] = {}
        args = getattr(fn, "args", None)
        params = set()
        if args is not None:
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                params.add(a.arg)
        # Pass 1: context roots.
        for node in _walk_excluding_defs(fn):
            named = _single_name_target(node)
            if named and _is_cache_get(named[1]):
                self.ctx_vars[named[0]] = "local-pin"
            if isinstance(node, ast.withitem) \
                    and node.optional_vars is not None \
                    and isinstance(node.optional_vars, ast.Name) \
                    and _is_cache_get(node.context_expr):
                self.ctx_vars[node.optional_vars.id] = "local-pin"
        for p in params:
            if p not in self.ctx_vars and (
                    p in ("ctx", "context") or p.endswith("ctx")
                    or p.endswith("context")):
                self.ctx_vars[p] = "param"
        # Pass 2: derivations (iterate to chase alias chains).
        for _ in range(3):
            changed = False
            for node in _walk_excluding_defs(fn):
                named = _single_name_target(node)
                if not named:
                    continue
                name, value = named
                root = self._root_of_value(value)
                if root is not None and self.derived_root.get(name) != root:
                    self.derived_root[name] = root
                    if self._is_buffer_value(value) or name in self.buffers:
                        pass
                    changed = True
                peeled = _peel_views(value)
                if self._is_buffer_value(peeled):
                    base = _base_name(peeled)
                    kind = self.ctx_vars.get(base or "", "attr")
                    if self.buffers.get(name) != kind:
                        self.buffers[name] = kind
                        changed = True
                elif isinstance(peeled, ast.Name) \
                        and peeled.id in self.buffers \
                        and self.buffers.get(name) \
                        != self.buffers[peeled.id]:
                    self.buffers[name] = self.buffers[peeled.id]
                    changed = True
                elif name in self.buffers and root is not None \
                        and root in self.buffers:
                    if self.buffers[name] != self.buffers[root]:
                        self.buffers[name] = self.buffers[root]
                        changed = True
                elif root in self.buffers and name not in self.buffers:
                    self.buffers[name] = self.buffers[root]
                    changed = True
            if not changed:
                break

    def _is_buffer_value(self, value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _BUFFER_METHODS
            and _base_name(value.func.value) is not None
            and (_base_name(value.func.value) in self.ctx_vars
                 or "ctx" in (_base_name(value.func.value) or "").lower()
                 or "context" in (_base_name(value.func.value) or "").lower())
        )

    def _root_of_value(self, value: ast.expr) -> str | None:
        """Root ctx var a value derives from, if any."""
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr in _DERIVE_METHODS:
            base = _base_name(value.func.value)
            if base in self.ctx_vars:
                return base
        if isinstance(value, ast.Name) and (
                value.id in self.derived_root or value.id in self.ctx_vars):
            return self.derived_root.get(value.id, value.id)
        if isinstance(value, ast.Subscript):
            return self._root_of_value(value.value)
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr in _VIEW_METHODS:
            return self._root_of_value(value.func.value)
        return None


# ---------------------------------------------------------------------------
# HPL201 — escapes
# ---------------------------------------------------------------------------
def _tracked_in(vmap: _ValueMap, expr: ast.expr) -> str | None:
    """Buffer var name if ``expr`` is (an alias/slice of) one."""
    if isinstance(expr, ast.Name) and expr.id in vmap.buffers:
        return expr.id
    if isinstance(expr, ast.Subscript):
        return _tracked_in(vmap, expr.value)
    if isinstance(expr, ast.Tuple):
        for elt in expr.elts:
            hit = _tracked_in(vmap, elt)
            if hit is not None:
                return hit
        return None
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in _VIEW_METHODS:
        return _tracked_in(vmap, expr.func.value)
    return None


def _check_escapes(unit: ModuleUnit, fn: ast.AST, vmap: _ValueMap,
                   emitter: Emitter) -> None:
    for node in _walk_excluding_defs(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            name = _tracked_in(vmap, node.value)
            if name is not None and vmap.buffers.get(name) == "local-pin":
                emitter.emit(
                    node, "HPL201",
                    f"'{name}' views a context pinned in this function "
                    f"and is returned past its release",
                    "copy out (bytes()/np.copy) or hand the caller the "
                    "context so the pin outlives the view",
                )
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and getattr(node, "value", None) is not None:
            name = _tracked_in(vmap, node.value)
            if name is not None and vmap.buffers.get(name) == "local-pin":
                emitter.emit(
                    node, "HPL201",
                    f"'{name}' views a context pinned in this function "
                    f"and is yielded across a suspension",
                    "copy out before yielding, or keep the pin for the "
                    "generator's lifetime",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            name = _tracked_in(vmap, value) if isinstance(value, ast.expr) \
                else None
            if name is None:
                continue
            for target in targets:
                stores_self = (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ) or (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"
                )
                if stores_self:
                    emitter.emit(
                        node, "HPL201",
                        f"'{name}' is a CMM buffer view stored on self "
                        f"— it outlives the pin/release region",
                        "store a copy, or re-derive the view from a "
                        "freshly pinned context per use",
                    )
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "append" and node.args:
            container = node.func.value
            if (isinstance(container, ast.Attribute)
                    and isinstance(container.value, ast.Name)
                    and container.value.id == "self"):
                name = _tracked_in(vmap, node.args[0])
                if name is not None:
                    emitter.emit(
                        node, "HPL201",
                        f"'{name}' is a CMM buffer view appended to "
                        f"self.{container.attr} — it outlives the pin",
                        "append a copy; buffer views are only valid "
                        "inside their pin/release region",
                    )


# ---------------------------------------------------------------------------
# HPL202 — use after possible release (CFG may-analysis)
# ---------------------------------------------------------------------------
def _release_effects(element: ast.AST, vmap: _ValueMap) -> tuple[set[str],
                                                                 set[str]]:
    """(released ctx roots, re-acquired ctx roots) of one element."""
    released: set[str] = set()
    acquired: set[str] = set()
    for node in ast.walk(element) if not isinstance(element, ast.stmt) \
            else _walk_excluding_defs(element):
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr in _RELEASE_METHODS and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Name) and arg.id in vmap.ctx_vars:
                released.add(arg.id)
        elif attr == "invalidate":
            base = _base_name(node.func.value)
            if base in vmap.ctx_vars:
                released.add(base)
        elif attr in _CLEAR_METHODS \
                and "cache" in _dotted_text(node.func.value):
            released.update(vmap.ctx_vars)
    named = _single_name_target(element)
    if named and named[0] in vmap.ctx_vars and _is_cache_get(named[1]):
        acquired.add(named[0])
    return released, acquired


class _ReleaseAnalysis(ForwardAnalysis):
    def __init__(self, vmap: _ValueMap) -> None:
        self.vmap = vmap

    def transfer_element(self, element: ast.AST, state: State) -> State:
        released, acquired = _release_effects(element, self.vmap)
        if released or acquired:
            return frozenset((set(state) - acquired) | released)
        return state


def _check_use_after_release(unit: ModuleUnit, fn, vmap: _ValueMap,
                             emitter: Emitter) -> None:
    if not vmap.ctx_vars:
        return
    cfg = build_cfg(fn)
    analysis = _ReleaseAnalysis(vmap)
    entry_states = analysis.solve(cfg)
    reported: set[tuple[str, int]] = set()
    for block in cfg.reachable():
        state = set(entry_states.get(block.bid, frozenset()))
        for element in block.elements:
            if state:
                for node in ast.walk(element):
                    if not (isinstance(node, ast.Name)
                            and isinstance(node.ctx, ast.Load)):
                        continue
                    root = (node.id if node.id in vmap.ctx_vars
                            else vmap.derived_root.get(node.id))
                    if root in state and (node.id, node.lineno) \
                            not in reported:
                        reported.add((node.id, node.lineno))
                        emitter.emit(
                            node, "HPL202",
                            f"'{node.id}' may be used after context "
                            f"'{root}' was released/evicted on a path",
                            "re-fetch (and pin) the context before the "
                            "use, or move the use before release",
                        )
            released, acquired = _release_effects(element, vmap)
            state -= acquired
            state |= released


# ---------------------------------------------------------------------------
# HPL203 — unvalidated shared-memory attach
# ---------------------------------------------------------------------------
def _is_shm_attach(unit: ModuleUnit, call: ast.Call) -> bool:
    qual = unit.qualified_name(call.func)
    if qual is None or not qual.endswith("SharedMemory"):
        return False
    for kw in call.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and bool(kw.value.value):
            return False
    return True


def _attach_name_arg(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "name":
            return kw.value
    return call.args[0] if call.args else None


def _check_shm_attach(unit: ModuleUnit, fn, emitter: Emitter) -> None:
    args = getattr(fn, "args", None)
    params = {a.arg for a in (*args.posonlyargs, *args.args,
                              *args.kwonlyargs)} if args else set()
    params.discard("self")
    if not params:
        return
    # One-level taint: locals assigned from a parameter's field/subscript.
    tainted = set(params)
    for node in _walk_excluding_defs(fn):
        named = _single_name_target(node)
        if not named:
            continue
        name, value = named
        base = _base_name(value)
        if base in tainted and isinstance(
                value, (ast.Subscript, ast.Attribute, ast.Call, ast.Name)):
            tainted.add(name)
    raise_lines = [n.lineno for n in _walk_excluding_defs(fn)
                   if isinstance(n, ast.Raise)]
    for node in _walk_excluding_defs(fn):
        if not isinstance(node, ast.Call) or not _is_shm_attach(unit, node):
            continue
        name_arg = _attach_name_arg(node)
        if name_arg is None:
            continue
        uses_taint = any(
            isinstance(n, ast.Name) and n.id in tainted
            for n in ast.walk(name_arg)
        )
        if not uses_taint:
            continue
        validated = any(line < node.lineno for line in raise_lines)
        if not validated:
            emitter.emit(
                node, "HPL203",
                "SharedMemory attached from peer-supplied reference "
                "with no validation before the attach",
                "validate name/offset/nbytes (raise ProtocolError on "
                "bad input) before mapping — see ShmRegistry.resolve",
            )


# ---------------------------------------------------------------------------
def check_module(unit: ModuleUnit) -> list[Finding]:
    """Run HPL201–HPL203 over one module."""
    emitter = Emitter(unit)
    for fn in _functions(unit):
        vmap = _ValueMap(fn)
        if vmap.buffers:
            _check_escapes(unit, fn, vmap, emitter)
        if vmap.ctx_vars:
            _check_use_after_release(unit, fn, vmap, emitter)
        _check_shm_attach(unit, fn, emitter)
    return emitter.findings
