"""Finding emission shared by the Statica rule packs.

:class:`Emitter` applies the same suppression contract as the syntactic
linter: a finding is dropped when ``# hpdrlint: disable=<RULE>``
appears on any line the offending node spans, on the first line of its
enclosing statement, or on the comment line directly above either.
"""

from __future__ import annotations

import ast

from repro.check.lint import Finding, is_suppressed
from repro.check.static.callgraph import ModuleUnit

__all__ = ["Emitter"]


class Emitter:
    """Collects suppression-filtered findings for one module."""

    def __init__(self, unit: ModuleUnit) -> None:
        self.unit = unit
        self.findings: list[Finding] = []

    def emit(self, node: ast.AST, rule: str, message: str, hint: str) -> None:
        lineno = getattr(node, "lineno", 1)
        end = getattr(node, "end_lineno", lineno) or lineno
        lines = set(range(lineno, end + 1))
        lines.add(lineno - 1)
        stmt = self.unit.enclosing_statement(node)
        if stmt is not None:
            lines.update((stmt.lineno, stmt.lineno - 1))
        if is_suppressed(self.unit.suppressions, rule, lines):
            return
        self.findings.append(
            Finding(
                path=str(self.unit.path),
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                hint=hint,
            )
        )
