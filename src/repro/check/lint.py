"""hpdrlint — static allocation/typing lint for HPDR kernel code.

AST-based, zero third-party dependencies, run via ``scripts/hpdrlint.py``
or :func:`lint_paths`.  Rules:

=======  =============================================================
HPL001   per-call allocation (``np.empty``/``np.zeros``/``np.array``/
         ``.astype``/``.copy`` …) inside a ``@hot_path`` function —
         hot paths must draw memory from a ReductionContext
HPL002   dtype-less array constructor in a kernel module (a module
         defining at least one ``@hot_path``): ``np.zeros(n)`` is an
         implicit float64 upcast that silently doubles bandwidth
HPL003   ufunc call without ``out=`` inside a ``@hot_path`` function —
         allocates a fresh result array every call
HPL004   a ``Functor`` subclass whose ``apply``/``__call__`` does not
         take exactly one required data argument (the GEM/DEM adapter
         calling convention in ``core/functor.py``)
=======  =============================================================

Suppression: a finding is dropped when ``# hpdrlint: disable=<RULE>
[,<RULE>…] — reason`` (or ``disable=all``) appears on any line the
offending node spans, on the first line of its enclosing statement, or
on the comment line directly above either.  Suppressions are deliberate
and auditable — the rule id stays greppable at the call site.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

RULES: dict[str, str] = {
    "HPL001": "allocation inside @hot_path (use ctx.buffer()/ctx.scratch())",
    "HPL002": "dtype-less array constructor in kernel module (implicit float64)",
    "HPL003": "ufunc without out= inside @hot_path (allocates per call)",
    "HPL004": "Functor subclass breaks the apply(data) calling convention",
}

#: the syntactic rules above form the ``core`` pack; the dataflow packs
#: (HPL1xx/2xx/3xx) live in :mod:`repro.check.static`.
CORE_PACK = "core"

#: numpy namespace calls that allocate a fresh array.
_NP_ALLOC = {
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "array", "ascontiguousarray", "copy",
    "arange", "linspace",
    "concatenate", "stack", "vstack", "hstack", "column_stack",
    "pad", "repeat", "tile", "fromiter",
}
#: ndarray methods that allocate (``.ravel``/``.reshape`` may view, so
#: they are deliberately absent).
_METHOD_ALLOC = {"astype", "copy", "flatten", "tobytes", "repeat"}
#: constructors whose default dtype is float64 when ``dtype=`` is absent.
_NP_DTYPE_DEFAULTED = {"empty", "zeros", "ones", "full", "arange", "linspace"}
#: ufuncs with an ``out=`` parameter worth using on a hot path.
_NP_UFUNC_OUT = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "mod", "remainder", "power",
    "minimum", "maximum", "abs", "absolute", "negative", "sign",
    "sqrt", "exp", "exp2", "log", "log2", "rint", "floor", "ceil", "trunc",
    "clip",
    "bitwise_and", "bitwise_or", "bitwise_xor", "invert",
    "left_shift", "right_shift",
    "cumsum", "cumprod", "take",
}
#: base-class names that make a ClassDef a functor for HPL004.
_FUNCTOR_BASES = {
    "Functor", "LocalityFunctor", "IterativeFunctor", "DomainFunctor",
}

_SUPPRESS_RE = re.compile(r"#\s*hpdrlint:\s*disable=([A-Za-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message}  [fix: {self.hint}]"
        )


def _suppressions(source: str) -> dict[int, set[str]]:
    """Line number (1-based) → set of suppressed rule ids (or {'all'})."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {
                tok.strip().upper()
                for tok in m.group(1).replace(" ", ",").split(",")
                if tok.strip()
            }
            out[lineno] = rules
    return out


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Public alias of the suppression-comment parser (line → rule ids)."""
    return _suppressions(source)


def is_suppressed(
    suppress: dict[int, set[str]], rule: str, lines: Iterable[int]
) -> bool:
    """True when ``rule`` is disabled on any of ``lines``."""
    for line in lines:
        rules = suppress.get(line)
        if rules and ("ALL" in rules or rule in rules):
            return True
    return False


def unknown_suppression_ids(
    source: str, known: Iterable[str]
) -> list[tuple[int, str]]:
    """``(line, rule_id)`` for suppression comments naming unknown rules.

    A typo in a suppression (``disable=HPL0001``) silently suppresses
    nothing while looking like it does — the CLI surfaces these as
    warnings instead of letting them pass unnoticed.
    """
    known_upper = {k.upper() for k in known} | {"ALL"}
    out: list[tuple[int, str]] = []
    for lineno, rules in _suppressions(source).items():
        for rule in sorted(rules):
            if rule not in known_upper:
                out.append((lineno, rule))
    return out


def _is_hot_decorator(dec: ast.expr) -> bool:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id == "hot_path"
    if isinstance(target, ast.Attribute):
        return target.attr == "hot_path"
    return False


class _FileLinter:
    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.findings: list[Finding] = []
        self.suppress = _suppressions(source)
        self.np_aliases: set[str] = set()
        self._stmt_line = 0
        self.tree = ast.parse(source, filename=str(path))
        self._collect_imports()
        self.hot_funcs = self._collect_hot_functions()
        self.is_kernel_module = bool(self.hot_funcs)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.np_aliases.add(alias.asname or "numpy")

    def _collect_hot_functions(self) -> set[ast.AST]:
        hot: set[ast.AST] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(_is_hot_decorator(d) for d in node.decorator_list):
                    hot.add(node)
        return hot

    # -- emission --------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str, hint: str) -> None:
        lineno = getattr(node, "lineno", 1)
        end = getattr(node, "end_lineno", lineno) or lineno
        lines = set(range(lineno, end + 1))
        lines.update((lineno - 1, self._stmt_line, self._stmt_line - 1))
        for line in lines:
            rules = self.suppress.get(line)
            if rules and ("ALL" in rules or rule in rules):
                return
        self.findings.append(
            Finding(
                path=str(self.path),
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                hint=hint,
            )
        )

    # -- call classification ---------------------------------------------
    def _np_func_name(self, call: ast.Call) -> str | None:
        """'zeros' for ``np.zeros(...)`` under any numpy import alias."""
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in self.np_aliases
        ):
            return f.attr
        return None

    def _has_kwarg(self, call: ast.Call, name: str) -> bool:
        return any(kw.arg == name for kw in call.keywords)

    def _check_call(self, call: ast.Call, hot: bool) -> None:
        np_name = self._np_func_name(call)
        if np_name is not None:
            if hot and np_name in _NP_ALLOC:
                self._emit(
                    call, "HPL001",
                    f"np.{np_name}() allocates on a @hot_path",
                    "draw the buffer from ctx.buffer()/ctx.scratch() once, "
                    "reuse it across calls",
                )
            elif (
                self.is_kernel_module
                and np_name in _NP_DTYPE_DEFAULTED
                and not self._has_kwarg(call, "dtype")
            ):
                # In hot functions HPL001 already covers the call; the
                # dtype rule catches kernel-module setup code.
                self._emit(
                    call, "HPL002",
                    f"np.{np_name}() without dtype= defaults to float64",
                    "pass an explicit dtype= matching the kernel's "
                    "working precision",
                )
            if (
                hot
                and np_name in _NP_UFUNC_OUT
                and not self._has_kwarg(call, "out")
            ):
                self._emit(
                    call, "HPL003",
                    f"np.{np_name}() without out= allocates per call",
                    "pass out= targeting a context-owned buffer",
                )
        elif hot and isinstance(call.func, ast.Attribute):
            if call.func.attr == "astype" and any(
                kw.arg == "copy"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in call.keywords
            ):
                return  # astype(..., copy=False) casts without allocating
            if call.func.attr in _METHOD_ALLOC:
                self._emit(
                    call, "HPL001",
                    f".{call.func.attr}() allocates on a @hot_path",
                    "hoist the conversion/copy out of the hot path or "
                    "write into a context-owned buffer",
                )

    # -- HPL004: functor calling convention ------------------------------
    def _check_functor_class(self, cls: ast.ClassDef) -> None:
        base_names = set()
        for base in cls.bases:
            if isinstance(base, ast.Name):
                base_names.add(base.id)
            elif isinstance(base, ast.Attribute):
                base_names.add(base.attr)
        if not base_names & _FUNCTOR_BASES:
            return
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in ("apply", "__call__")
            ):
                a = item.args
                required = (
                    len(a.posonlyargs) + len(a.args) - len(a.defaults)
                )
                required_kwonly = sum(
                    1 for d in a.kw_defaults if d is None
                )
                # self + data = exactly 2 required positional params, no
                # required keyword-only params: adapters call
                # functor.apply(batch) positionally.
                if required != 2 or required_kwonly:
                    self._emit(
                        item, "HPL004",
                        f"{cls.name}.{item.name} requires "
                        f"{required - 1} data argument(s) "
                        f"(+{required_kwonly} required kwonly); adapters "
                        f"call {item.name}(data) with exactly one",
                        "make the signature (self, data, *, extras_with_"
                        "defaults) and bind configuration in __init__",
                    )

    # -- traversal --------------------------------------------------------
    def run(self) -> list[Finding]:
        self._walk(self.tree, hot=False)
        return self.findings

    def _walk(self, node: ast.AST, hot: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt_line = child.lineno
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(child, hot=hot or child in self.hot_funcs)
            elif isinstance(child, ast.ClassDef):
                self._check_functor_class(child)
                self._walk(child, hot=hot)
            else:
                if isinstance(child, ast.Call):
                    self._check_call(child, hot)
                self._walk(child, hot)


def lint_source(path: Path | str, source: str) -> list[Finding]:
    """Lint one module's source text."""
    return _FileLinter(Path(path), source).run()


def _iter_py_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(paths: Iterable[Path | str]) -> list[Finding]:
    """Lint files and directories (recursively); returns all findings."""
    findings: list[Finding] = []
    for file in _iter_py_files(paths):
        findings.extend(lint_source(file, file.read_text(encoding="utf-8")))
    return findings


def format_findings(findings: list[Finding]) -> str:
    lines = [f.format() for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{n}x {r}" for r, n in sorted(by_rule.items()))
    lines.append(
        f"hpdrlint: {len(findings)} finding(s)"
        + (f" ({summary})" if summary else "")
    )
    return "\n".join(lines)
