"""CMM misuse checks: steady-state leaks and context-key thrash.

The Context Memory Model's contract (paper III-B) is that after warm-up
a same-shaped workload performs *zero* runtime memory management.  Two
ways code quietly breaks that contract:

* **SAN-LEAK** — the byte/event accounting of a :class:`ContextCache`
  keeps growing across repeated same-shaped calls: some allocation is
  not routed through a stably-named ``ctx.buffer()``/``ctx.scratch()``,
  so every call re-allocates.
* **SAN-CTX** — one buffer name is rebound over and over with a new
  shape or dtype inside the *same* context: the context key does not
  capture everything that varies, so the "cache" thrashes instead of
  caching (each rebind is a hidden realloc + poison of old views).

:func:`assert_steady_state` drives a workload callable through warm-up
and measurement reps against both rules; :class:`CMMWatch` is the
underlying before/after differ for custom call patterns.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.check.errors import ContextThrashError, SteadyStateLeakError
from repro.core.context import ContextCache

#: A buffer rebinding this many times within one context is thrash, not
#: a one-off transition (first bind is not a rebind; one rebind can be
#: a legitimate reconfiguration).
REBIND_TOLERANCE = 2


class CMMWatch:
    """Snapshot/diff instrumentation over a :class:`ContextCache`."""

    def __init__(self, cache: ContextCache) -> None:
        self.cache = cache
        self.mark()

    def mark(self) -> None:
        """Record the current accounting as the new baseline."""
        self._events = self.cache.alloc_events
        self._bytes = self.cache.alloc_bytes_total
        self._rebinds: dict[tuple[Hashable, str], int] = {
            (ctx.key, name): count
            for ctx in self.cache.contexts()
            for name, count in ctx.rebinds.items()
        }

    @property
    def new_events(self) -> int:
        return self.cache.alloc_events - self._events

    @property
    def new_bytes(self) -> int:
        return self.cache.alloc_bytes_total - self._bytes

    def new_rebinds(self) -> dict[tuple[Hashable, str], int]:
        """(context key, buffer name) → rebind count since :meth:`mark`."""
        out: dict[tuple[Hashable, str], int] = {}
        for ctx in self.cache.contexts():
            for name, count in ctx.rebinds.items():
                delta = count - self._rebinds.get((ctx.key, name), 0)
                if delta > 0:
                    out[(ctx.key, name)] = delta
        return out

    def check_thrash(self, tolerance: int = REBIND_TOLERANCE) -> None:
        """Raise :class:`ContextThrashError` on repeated rebinds."""
        worst = {
            k: n for k, n in self.new_rebinds().items() if n >= tolerance
        }
        if worst:
            (key, name), count = max(worst.items(), key=lambda kv: kv[1])
            raise ContextThrashError(
                f"buffer {name!r} in context {key!r} was rebound "
                f"{count}x with a new shape/dtype — the context key does "
                f"not capture the varying data characteristics"
            )

    def check_leak(self, what: str = "workload") -> None:
        """Raise :class:`SteadyStateLeakError` if accounting grew."""
        if self.new_events > 0:
            grown = sorted(
                (ctx for ctx in self.cache.contexts() if ctx.alloc_count),
                key=lambda c: -c.alloc_count,
            )
            detail = ", ".join(
                f"{c.key!r} ({c.alloc_count} allocs, {c.nbytes}B)"
                for c in grown[:4]
            )
            raise SteadyStateLeakError(
                f"{what} performed {self.new_events} allocation events "
                f"(+{self.new_bytes}B) after warm-up — not a zero-alloc "
                f"steady state; live contexts: {detail or 'none'}"
            )


def assert_steady_state(
    fn: Callable[[], object],
    cache: ContextCache,
    *,
    warmup: int = 2,
    reps: int = 3,
    rebind_tolerance: int = REBIND_TOLERANCE,
) -> None:
    """Assert ``fn`` reaches a zero-alloc steady state on ``cache``.

    Calls ``fn`` ``warmup`` times (allocations expected and allowed),
    then ``reps`` more times during which the cache's allocation
    accounting must not move (SAN-LEAK) and no context buffer may keep
    rebinding shapes/dtypes (SAN-CTX).  Thrash is diagnosed first: a
    rebinding buffer also shows up as allocation events, and the rebind
    is the root cause.
    """
    for _ in range(warmup):
        fn()
    watch = CMMWatch(cache)
    for _ in range(reps):
        fn()
    watch.check_thrash(tolerance=rebind_tolerance)
    watch.check_leak(what=f"{reps} steady-state calls after warm-up")
