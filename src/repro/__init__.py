"""HPDR: High-Performance Portable Scientific Data Reduction Framework.

Python reproduction of Chen et al., IPDPS 2025.  The package provides:

* the HPDR framework core — parallelization abstractions, execution
  models, context memory management, and the optimized host-device
  pipeline (:mod:`repro.core`);
* device adapters for serial/multicore CPUs and simulated CUDA/HIP GPUs
  (:mod:`repro.adapters`);
* three reduction pipelines built on the framework — MGARD-X, ZFP-X and
  Huffman-X — plus the evaluation baselines
  (:mod:`repro.compressors`);
* a discrete-event hardware substrate standing in for the paper's
  GPUs/supercomputers (:mod:`repro.machine`, :mod:`repro.perf`);
* an ADIOS2-like I/O layer with at-scale simulations
  (:mod:`repro.io`);
* synthetic stand-ins for the NYX/XGC/E3SM datasets
  (:mod:`repro.data`).

Quickstart::

    import numpy as np
    from repro import MGARDX, Config, ErrorMode
    from repro.data import nyx_like

    data = nyx_like((64, 64, 64))
    compressor = MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL))
    blob = compressor.compress(data)
    restored = compressor.decompress(blob)
    assert compressor.max_error(data, blob) <= 1e-3 * np.ptp(data)
"""

from repro.core.config import Config, ErrorMode
from repro.core.context import ContextCache, ReductionContext
from repro.core.abstractions import (
    Abstraction,
    global_pipeline,
    iterative,
    locality,
    map_and_process,
)
from repro.adapters import get_adapter, list_adapters
from repro.compressors.mgard.compressor import MGARDX
from repro.compressors.zfp.compressor import ZFPX, rate_for_error_bound
from repro.compressors.zfp.modes import ZFPAccuracy, ZFPPrecision
from repro.compressors.mgard.refactor import MGARDRefactor, RefactoredData
from repro.core.streaming import StreamingCompressor, StreamingDecompressor
from repro.compressors.huffman.compressor import HuffmanX
from repro.compressors.baselines.sz import SZ
from repro.compressors.baselines.lz4 import LZ4
from repro.compressors.baselines.mgard_gpu import MGARDGPU
from repro.compressors.baselines.zfp_cuda import ZFPCUDA
from repro.progressive import (
    ProgressiveMGARD,
    ProgressiveRetriever,
    RetrievalReport,
    SegmentIndex,
)

__version__ = "1.0.0"

__all__ = [
    "Config",
    "ErrorMode",
    "ContextCache",
    "ReductionContext",
    "Abstraction",
    "locality",
    "iterative",
    "map_and_process",
    "global_pipeline",
    "get_adapter",
    "list_adapters",
    "MGARDX",
    "ZFPX",
    "rate_for_error_bound",
    "ZFPAccuracy",
    "ZFPPrecision",
    "MGARDRefactor",
    "RefactoredData",
    "StreamingCompressor",
    "StreamingDecompressor",
    "HuffmanX",
    "SZ",
    "LZ4",
    "MGARDGPU",
    "ZFPCUDA",
    "ProgressiveMGARD",
    "ProgressiveRetriever",
    "RetrievalReport",
    "SegmentIndex",
    "__version__",
]
