"""Typed failure modes of the HPDR-Cluster router.

The router keeps the serve layer's error discipline: clients always see
a *typed* condition they can act on.  :class:`ShardOverloaded`
(re-exported from :mod:`repro.serve.errors`, where the transport can
reach it) means back off — one shard's admission slice is full.
:class:`ShardDied` is internal to the router's failover loop: any
transport- or lifecycle-level failure of a shard maps to it, the
circuit breaker counts it, and the request is retried on a survivor —
callers only ever see it wrapped in a
:class:`~repro.resilience.errors.ResilienceExhausted` when every
attempt ran dry.  :class:`NoHealthyShards` is the cluster-down terminal
state.
"""

from __future__ import annotations

from repro.serve.errors import ServeError, ShardOverloaded

__all__ = ["NoHealthyShards", "ShardDied", "ShardOverloaded"]


class ShardDied(ServeError):
    """A shard stopped answering (process death, connection loss, drain).

    Retry-safe by construction: every HPDR backend produces
    bit-identical streams, so re-executing the request on a surviving
    shard returns exactly the bytes the dead shard would have produced.
    """

    def __init__(self, shard: str, why: str = "stopped answering") -> None:
        self.shard = shard
        super().__init__(f"shard {shard} {why}")


class NoHealthyShards(ServeError):
    """Every shard of the cluster is dead; the request cannot be placed."""

    def __init__(self, total: int) -> None:
        self.total = total
        super().__init__(
            f"no healthy shards ({total} configured, all circuit-open)"
        )
