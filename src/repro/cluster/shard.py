"""Shard backends: the processes (or in-loop tasks) behind the router.

A *shard* is one :class:`~repro.serve.service.ReductionService` owning
a slice of the cluster's hash ranges.  Two backends implement the same
small contract (``start`` / ``submit`` / ``ping`` / ``kill`` /
``close``):

* :class:`InProcShard` — the service runs as tasks on the router's own
  event loop.  Zero spawn cost and fully deterministic, so the
  conformance and hypothesis failover suites use it; ``kill()``
  simulates abrupt death by discarding every answer from the moment of
  the kill (exactly what a crashed process does to its in-flight
  requests).
* :class:`ProcessShard` — a real subprocess (``spawn``) running the
  service behind its own TCP socket, reached through a
  :class:`ShardClient` connection pool speaking the unchanged
  :mod:`repro.serve.net` framing.  This is the production shape: codec
  work escapes the GIL, and ``kill()`` is a genuine ``SIGKILL``.

Both backends translate every transport- or lifecycle-level failure
into a typed :class:`~repro.cluster.errors.ShardDied`, the single
signal the router's failover loop retries on.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from typing import Any

from repro.cluster.errors import ShardDied
from repro.serve.errors import ProtocolError, ServeError, ServiceClosed
from repro.serve.net import BlastClient
from repro.serve.service import ReductionService, ServiceConfig
from repro.serve.spec import CodecSpec

#: transport failures a ShardClient maps to ShardDied.
_TRANSPORT_ERRORS = (
    ProtocolError,
    ConnectionError,
    asyncio.IncompleteReadError,
    EOFError,
    OSError,
)

#: seconds a spawning shard process gets to report its port.
SPAWN_TIMEOUT_S = 60.0


class InProcShard:
    """A shard hosted on the router's event loop (test/dev backend)."""

    def __init__(self, name: str, config: ServiceConfig) -> None:
        self.name = name
        self._service = ReductionService(config)
        self._dead = False

    @property
    def dead(self) -> bool:
        return self._dead

    async def start(self) -> None:
        await self._service.start()

    async def submit(self, op: str, spec: CodecSpec, payload: Any) -> Any:
        if self._dead:
            raise ShardDied(self.name)
        try:
            value = await self._service.submit(op, spec, payload)
        except ServiceClosed as exc:
            raise ShardDied(self.name, "is draining") from exc
        if self._dead:
            # The shard "crashed" while this request was in flight: the
            # computed answer is lost exactly as a killed process loses
            # its response buffers.  The router re-executes elsewhere.
            raise ShardDied(self.name, "died mid-request")
        return value

    async def ping(self) -> None:
        if self._dead:
            raise ShardDied(self.name)

    def kill(self) -> None:
        """Abrupt simulated death: every unanswered request is lost."""
        self._dead = True

    async def close(self) -> None:
        await self._service.close()


# ---------------------------------------------------------------------------
def _shard_main(config: ServiceConfig, conn: Any) -> None:  # pragma: no cover
    """Subprocess entry point: serve one shard on an ephemeral TCP port.

    Runs in the spawned child (not measured by coverage).  Reports the
    bound port through ``conn``, then serves until SIGTERM (graceful
    drain) or SIGKILL (the router's failover drill).
    """
    import signal

    from repro.serve.net import serve_tcp

    async def run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            loop.add_signal_handler(signal.SIGINT, stop.set)
        except NotImplementedError:
            pass
        async with ReductionService(config) as svc:
            server = await serve_tcp(svc, "127.0.0.1", 0)
            conn.send(int(server.sockets[0].getsockname()[1]))
            conn.close()
            await stop.wait()
            server.close()
            await server.wait_closed()

    asyncio.run(run())


def _await_port(conn: Any, proc: Any, timeout_s: float) -> int:
    """Blocking port read (runs on an executor thread, never the loop)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if conn.poll(0.05):
            return int(conn.recv())
        if not proc.is_alive():
            raise ShardDied(proc.name, "died during startup")
    raise ShardDied(proc.name, f"did not report a port in {timeout_s:.0f}s")


class ShardClient:
    """Bounded connection pool to one shard's TCP endpoint.

    Each :mod:`repro.serve.net` connection carries one request at a
    time (the framing is sequential per connection), so per-shard
    concurrency equals pool size; ``limit`` bounds it and extra callers
    queue on the semaphore.  Connections are created lazily and reused;
    a connection that suffers a transport error is discarded and the
    failure surfaces as :class:`ShardDied`.
    """

    def __init__(self, host: str, port: int, limit: int = 8) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._host = host
        self._port = port
        self._sem = asyncio.Semaphore(limit)
        self._free: list[BlastClient] = []

    async def _call(self, fn_name: str, *args: Any) -> Any:
        async with self._sem:
            client = self._free.pop() if self._free else None
            try:
                if client is None:
                    client = await BlastClient.connect(self._host, self._port)
                value = await getattr(client, fn_name)(*args)
            except _TRANSPORT_ERRORS as exc:
                if client is not None:
                    await _close_quietly(client)
                raise ShardDied(f"{self._host}:{self._port}",
                                f"transport failed ({exc})") from exc
            except ServeError:
                # Typed service errors (overload, remote request
                # failures) are decoded from a fully consumed response
                # frame — the connection is still frame-aligned, reuse
                # it.  (ProtocolError took the transport path above.)
                self._free.append(client)
                raise
            except BaseException:
                # Cancellation (or anything else) may abandon a
                # response mid-wire; drop the connection to stay
                # frame-aligned.
                if client is not None:
                    await _close_quietly(client)
                raise
            else:
                self._free.append(client)
                return value

    async def request(self, op: str, spec: CodecSpec, payload: Any) -> Any:
        return await self._call("request", op, spec, payload)

    async def ping(self) -> None:
        await self._call("ping")

    async def close(self) -> None:
        free, self._free = self._free, []
        for client in free:
            await _close_quietly(client)


async def _close_quietly(client: BlastClient) -> None:
    try:
        await client.close()
    except _TRANSPORT_ERRORS:
        pass


class ProcessShard:
    """A shard in its own spawned process, reached over loopback TCP."""

    def __init__(self, name: str, config: ServiceConfig,
                 connections: int = 8) -> None:
        if config.retry_sleep is not None:
            raise ValueError(
                "retry_sleep is not injectable across shard processes "
                "(callables do not pickle); use the in-process backend"
            )
        self.name = name
        self._config = config
        self._connections = connections
        self._proc: Any = None
        self._client: ShardClient | None = None
        self.port: int | None = None

    async def start(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self._proc = ctx.Process(
            target=_shard_main, args=(self._config, child_conn),
            name=self.name, daemon=True,
        )
        self._proc.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        self.port = await loop.run_in_executor(
            None, _await_port, parent_conn, self._proc, SPAWN_TIMEOUT_S
        )
        parent_conn.close()
        self._client = ShardClient("127.0.0.1", self.port,
                                   limit=self._connections)

    @property
    def dead(self) -> bool:
        return self._proc is None or not self._proc.is_alive()

    async def submit(self, op: str, spec: CodecSpec, payload: Any) -> Any:
        if self._client is None or self.dead:
            raise ShardDied(self.name, "is not running")
        return await self._client.request(op, spec, payload)

    async def ping(self) -> None:
        if self._client is None or self.dead:
            raise ShardDied(self.name, "is not running")
        await self._client.ping()

    def kill(self) -> None:
        """SIGKILL — abrupt death, in-flight requests are lost."""
        if self._proc is not None and self._proc.is_alive():
            self._proc.kill()

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
            self._client = None
        if self._proc is None:
            return
        proc = self._proc
        self._proc = None
        if proc.is_alive():
            proc.terminate()  # SIGTERM: the shard drains gracefully
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, proc.join, 10.0)
        if proc.is_alive():  # pragma: no cover - drain never hangs
            proc.kill()
            await loop.run_in_executor(None, proc.join, 5.0)
