"""Consistent hashing with virtual nodes — the cluster's routing core.

The router shards requests by ``(codec, dtype, shape-class)``
(:func:`route_key`, derived from the same spec keying the serve layer
batches by) over a :class:`HashRing`.  Consistent hashing is what makes
failover *minimally disruptive*: when a shard dies and its hash range is
adopted by the survivors, only the keys that mapped to the dead shard
move — every other key keeps its owner, so the survivors' pinned CMM
contexts and warmed codec caches stay hot (the property suite pins this
at 2/4/8 shards).

Design points:

* **Deterministic placement.**  Ring points are SHA-256 digests of
  stable token strings, never Python ``hash()`` — placement is
  identical across processes and runs regardless of
  ``PYTHONHASHSEED``, which the router relies on when it re-resolves a
  key mid-failover.
* **Virtual nodes.**  Each shard contributes ``vnodes`` points
  (default 64), smoothing the per-shard key share and spreading an
  adopted range across *all* survivors instead of dumping it on the
  dead shard's single successor.
* **Pure data structure.**  No I/O, no clocks, no locks — mutation
  happens only on the router's event loop.  Lookup is a binary search
  over the sorted point array.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Hashable

import numpy as np

from repro.serve.spec import CodecSpec, shape_class, size_class

#: default virtual nodes per shard.
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """Stable 64-bit ring position for ``token`` (SHA-256 prefix)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def route_key(spec: CodecSpec, op: str, payload: Any) -> tuple[Hashable, ...]:
    """The ``(codec, dtype, shape-class)`` tuple a request shards by.

    Compress requests key on the array's dtype and shape class — every
    request of one reduction configuration and working-set size lands
    on the same shard, where the serve layer batches them together and
    reuses one pinned context.  Decompress requests carry an opaque
    stream, so the byte-size class stands in for the shape class.
    """
    if op == "compress":
        arr = np.asarray(payload)
        return spec.key() + (arr.dtype.str, shape_class(arr.shape))
    return spec.key() + ("blob", size_class(max(1, len(payload))))


class HashRing:
    """Consistent-hash ring over named shards with virtual nodes."""

    def __init__(self, nodes: tuple[str, ...] | list[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Insert ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self._vnodes):
            point = _point(f"{node}#{v}")
            idx = bisect.bisect_left(self._points, point)
            # SHA-256 collisions between distinct tokens are not a
            # practical concern; ties break toward the earlier insert.
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Drop ``node``; its ranges fall to the ring successors.

        This is the *adoption* primitive: every key that mapped to
        ``node`` now maps to the next point on the ring (a survivor),
        and no other key moves.
        """
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def lookup(self, key: Hashable) -> str:
        """Owner of ``key``: the first ring point at or after its hash."""
        if not self._points:
            raise LookupError("hash ring is empty (no shards alive)")
        h = _point(repr(key))
        idx = bisect.bisect_left(self._points, h)
        if idx == len(self._points):
            idx = 0  # wrap around
        return self._owners[idx]

    def share(self, keys: list[Hashable]) -> dict[str, int]:
        """Key count per owner — balance diagnostics for tests/docs."""
        out: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            out[self.lookup(key)] += 1
        return out
