"""HPDR-Cluster: sharded serving behind a consistent-hash router.

One :class:`ClusterService` fronts N shards — each a full
:class:`~repro.serve.service.ReductionService` (in-loop task or real
subprocess) — and exposes the *exact* single-service request surface,
so the TCP transport, the blast load generator, and the service
conformance checker all run against the cluster front door unchanged.

Requests shard by ``(codec, dtype, shape-class)`` over a consistent
hash ring with virtual nodes; replicas balance by least backlog;
per-shard admission slices shed load with a typed
:class:`ShardOverloaded`; and a dead shard's hash range is adopted by
the survivors while the failed requests retry there — deterministic
codecs make the retried responses byte-identical, so clients never
observe the death.

See ``docs/architecture.md`` (cluster data path) and
``docs/operations.md`` (shard sizing and failover runbook).
"""

from __future__ import annotations

from repro.cluster.errors import NoHealthyShards, ShardDied, ShardOverloaded
from repro.cluster.hashring import DEFAULT_VNODES, HashRing, route_key
from repro.cluster.router import (
    BACKENDS,
    ClusterConfig,
    ClusterService,
    ClusterStats,
)
from repro.cluster.shard import InProcShard, ProcessShard, ShardClient
from repro.cluster.workload import mixed_specs

__all__ = [
    "BACKENDS",
    "ClusterConfig",
    "ClusterService",
    "ClusterStats",
    "DEFAULT_VNODES",
    "HashRing",
    "InProcShard",
    "NoHealthyShards",
    "ProcessShard",
    "ShardClient",
    "ShardDied",
    "ShardOverloaded",
    "mixed_specs",
    "route_key",
]
