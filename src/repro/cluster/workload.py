"""Mixed codec workloads for cluster benches, soaks, and drills.

The cluster shards by ``(codec, dtype, shape-class)`` — deliberately
coarse, so one reduction configuration's traffic stays on one shard
where the serve layer batches it.  The flip side: a *single-spec*
workload exercises exactly one shard and measures nothing about the
cluster.  Every cluster-level load path (``bench_cluster``, the blast
``--codec mixed`` mode, the nightly soak) therefore drives a mixed
workload built here: a deterministic roster of specs whose route keys
are all distinct, so consistent hashing spreads them over the ring.

Only key-participating parameters vary (see
:meth:`~repro.serve.spec.CodecSpec.key`): zfp rates, huffman chunk
sizes, mgard/sz error bounds.  Order is fixed — the same roster on
every run and in every process.
"""

from __future__ import annotations

from repro.serve.spec import CodecSpec

#: deterministic mixed roster; every entry has a distinct route key.
_ROSTER: tuple[CodecSpec, ...] = (
    CodecSpec(name="zfp-x", rate=8.0),
    CodecSpec(name="huffman-x", chunk_size=1024),
    CodecSpec(name="lz4"),
    CodecSpec(name="sz", error_bound=1e-3),
    CodecSpec(name="zfp-x", rate=16.0),
    CodecSpec(name="huffman-x", chunk_size=4096),
    CodecSpec(name="sz", error_bound=1e-2),
    CodecSpec(name="zfp-x", rate=4.0),
    CodecSpec(name="mgard-x", error_bound=1e-3),
    CodecSpec(name="huffman-x", chunk_size=512),
    CodecSpec(name="sz", error_bound=1e-4),
    CodecSpec(name="zfp-x", rate=32.0),
    CodecSpec(name="mgard-x", error_bound=1e-2),
    CodecSpec(name="huffman-x", chunk_size=2048),
    CodecSpec(name="mgard-x", error_bound=1e-4),
    CodecSpec(name="zfp-x", rate=2.0),
)


def mixed_specs(n: int = 16) -> list[CodecSpec]:
    """``n`` specs with pairwise-distinct route keys (``n`` <= 16)."""
    if not 1 <= n <= len(_ROSTER):
        raise ValueError(f"n must be in [1, {len(_ROSTER)}], got {n}")
    return list(_ROSTER[:n])
