"""HPDR-Cluster: the consistent-hash router fronting N service shards.

:class:`ClusterService` exposes the exact request surface of a single
:class:`~repro.serve.service.ReductionService` (``submit`` /
``compress`` / ``decompress`` / ``drain`` / ``close``, async context
manager) — so :func:`repro.serve.net.serve_tcp` serves it unchanged and
:func:`repro.testing.check_service` passes byte-identically against the
cluster front door.  Behind that surface:

* **sharding** — each request's :func:`~repro.cluster.hashring.route_key`
  (``codec, dtype, shape-class``) resolves through a consistent-hash
  ring with virtual nodes; all traffic of one reduction configuration
  lands on one shard, where the serve layer's micro-batcher and pinned
  CMM contexts do their work;
* **replicas** — a shard may run ``replicas`` identical backends;
  requests go to the least-backlog healthy replica (the same policy the
  service applies to its workers, one level up);
* **backpressure** — the router tracks in-flight requests per shard
  and sheds load with a typed
  :class:`~repro.serve.errors.ShardOverloaded` *before* forwarding, so
  a saturated shard costs no transport round-trip (and clients reuse
  their existing :class:`~repro.serve.errors.ServiceOverloaded` backoff
  path);
* **failover** — every shard failure feeds a per-replica
  :class:`~repro.resilience.policy.CircuitBreaker`; when a shard's last
  replica opens, its hash range is *adopted* by the survivors
  (``ring.remove`` — the ULFM-style shrink the campaign runner applies
  to ranks, applied to shards) and the failed request retries on the
  new owner under the cluster's
  :class:`~repro.resilience.policy.RetryPolicy`.  Determinism makes
  the retry loss-free: the survivor produces byte-identical streams.

Observability: always-on ``hpdr_cluster_requests_total`` (per shard),
``hpdr_cluster_rejected_total``, ``hpdr_cluster_failovers_total``,
``hpdr_cluster_adoptions_total`` counters and the
``hpdr_cluster_shards_alive`` gauge, plus ``cluster.failover`` /
``cluster.adopt`` spans when tracing is enabled.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.errors import NoHealthyShards, ShardDied
from repro.cluster.hashring import DEFAULT_VNODES, HashRing, route_key
from repro.cluster.shard import InProcShard, ProcessShard
from repro.resilience.errors import ResilienceExhausted
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.serve.errors import (
    ServiceClosed,
    ServiceOverloaded,
    ShardOverloaded,
)
from repro.serve.service import ServiceConfig
from repro.serve.spec import CodecSpec
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import Span, TRACER as _TRACER

#: shard backend families.
BACKENDS = ("task", "process")


@dataclass
class ClusterConfig:
    """Knobs of one :class:`ClusterService`.

    ``service`` is the per-shard :class:`ServiceConfig` — every shard
    replica runs an identical service built from it.  ``backend`` picks
    in-loop shards (``"task"``, deterministic, zero spawn cost) or real
    subprocesses (``"process"``, true parallelism, genuine SIGKILL
    failure drills).  ``shard_max_pending`` is the router-side
    admission slice per shard (defaults to the shard service's own
    ``max_pending``, so the router sheds load the shard would have
    shed, without the round-trip).

    Auto-tuning: the per-shard config's ``tune``/``tuning_cache``
    fields ride into every shard unchanged (task shards in-process,
    process shards across the spawn pickle), so each shard's
    ``ReductionService.start()`` consults the same tuning cache — one
    learned service entry configures the whole cluster.
    """

    shards: int = 2
    replicas: int = 1
    backend: str = "task"
    service: ServiceConfig = field(default_factory=ServiceConfig)
    shard_max_pending: int | None = None
    vnodes: int = DEFAULT_VNODES
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 2
    health_interval_s: float = 0.25
    connections_per_shard: int = 8

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.shard_max_pending is not None and self.shard_max_pending < 1:
            raise ValueError("shard_max_pending must be >= 1")
        if self.connections_per_shard < 1:
            raise ValueError("connections_per_shard must be >= 1")

    @property
    def per_shard_limit(self) -> int:
        limit = self.shard_max_pending
        return limit if limit is not None else self.service.max_pending


class ClusterStats:
    """Always-on operational counters of the router."""

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.errors = 0
        self.failovers = 0
        self.adoptions = 0
        self.peak_inflight = 0
        self.per_shard: dict[str, int] = {}

    def snapshot(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "failovers": self.failovers,
            "adoptions": self.adoptions,
            "peak_inflight": self.peak_inflight,
            "per_shard": dict(sorted(self.per_shard.items())),
        }


class _Replica:
    """One shard backend plus its health state (router-side view)."""

    def __init__(self, name: str, shard: Any, threshold: int) -> None:
        self.name = name
        self.shard = shard
        self.breaker = CircuitBreaker(threshold=threshold)
        self.inflight = 0

    @property
    def healthy(self) -> bool:
        return not self.breaker.is_open


class _ShardGroup:
    """A hash-range owner: ``replicas`` identical backends."""

    def __init__(self, sid: str, replicas: list[_Replica]) -> None:
        self.sid = sid
        self.replicas = replicas

    @property
    def alive(self) -> bool:
        return any(r.healthy for r in self.replicas)

    @property
    def inflight(self) -> int:
        return sum(r.inflight for r in self.replicas)

    def pick(self) -> _Replica:
        """Least-backlog healthy replica (raises if none)."""
        healthy = [r for r in self.replicas if r.healthy]
        if not healthy:
            raise ShardDied(self.sid, "has no healthy replicas")
        return min(healthy, key=lambda r: r.inflight)


class ClusterService:
    """Sharded multi-service front door (ReductionService-compatible)."""

    def __init__(self, config: ClusterConfig | None = None,
                 **overrides: Any) -> None:
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.stats = ClusterStats()
        self._groups: dict[str, _ShardGroup] = {}
        self._ring = HashRing(vnodes=config.vnodes)
        self._health_task: asyncio.Task[None] | None = None
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._started = False
        self._closing = False
        self._closed = False
        self._ctr_requests = _METRICS.counter(
            "hpdr_cluster_requests_total", "requests routed by the cluster"
        )
        self._ctr_rejected = _METRICS.counter(
            "hpdr_cluster_rejected_total",
            "requests shed by per-shard backpressure",
        ).child(reason="backpressure")
        self._ctr_failovers = _METRICS.counter(
            "hpdr_cluster_failovers_total",
            "requests re-routed after a shard failure",
        )
        self._ctr_adoptions = _METRICS.counter(
            "hpdr_cluster_adoptions_total",
            "hash ranges adopted from dead shards",
        )
        self._gauge_alive = _METRICS.gauge(
            "hpdr_cluster_shards_alive", "shards currently on the ring"
        )
        self._req_children: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ClusterService":
        if self._started:
            return self
        cfg = self.config
        self._idle = asyncio.Event()
        self._idle.set()
        shards: list[Any] = []
        for s in range(cfg.shards):
            sid = f"s{s}"
            replicas = []
            for r in range(cfg.replicas):
                name = f"{sid}r{r}"
                backend: Any
                if cfg.backend == "process":
                    backend = ProcessShard(
                        name, cfg.service,
                        connections=cfg.connections_per_shard,
                    )
                else:
                    backend = InProcShard(name, cfg.service)
                shards.append(backend)
                replicas.append(
                    _Replica(name, backend, cfg.breaker_threshold)
                )
            self._groups[sid] = _ShardGroup(sid, replicas)
            self._ring.add(sid)
        await asyncio.gather(*(b.start() for b in shards))
        self._gauge_alive.set(len(self._ring))
        if cfg.health_interval_s > 0:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )
        self._started = True
        return self

    async def __aenter__(self) -> "ClusterService":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- introspection --------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def alive_shards(self) -> frozenset[str]:
        return self._ring.nodes

    @property
    def shard_ids(self) -> list[str]:
        return sorted(self._groups)

    def owner(self, op: str, spec: CodecSpec, payload: Any) -> str:
        """Shard currently owning this request's hash range."""
        return self._ring.lookup(route_key(spec, op, payload))

    # -- health / failover ----------------------------------------------
    async def _health_loop(self) -> None:
        """Background prober: dead shards are adopted without traffic."""
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for group in self._groups.values():
                if group.sid not in self._ring:
                    continue
                for replica in group.replicas:
                    if not replica.healthy:
                        continue
                    try:
                        await replica.shard.ping()
                    except asyncio.CancelledError:
                        raise
                    except Exception:
                        replica.breaker.record_failure()
                        if replica.breaker.is_open:
                            self._adopt_if_dead(group)
                    else:
                        replica.breaker.record_success()

    def _adopt_if_dead(self, group: _ShardGroup) -> None:
        """Remove a fully-dead shard from the ring (survivors adopt)."""
        if group.alive or group.sid not in self._ring:
            return
        self._ring.remove(group.sid)
        self.stats.adoptions += 1
        self._ctr_adoptions.inc()
        self._gauge_alive.set(len(self._ring))
        if _TRACER.enabled:
            with Span(_TRACER, "cluster.adopt", "cluster",
                      {"shard": group.sid,
                       "survivors": len(self._ring)}):
                pass

    def kill_shard(self, sid: str) -> None:
        """Abruptly kill every replica of ``sid`` (failover drill).

        Only the backends die here — the router *discovers* the death
        through failed requests and health probes, exactly as it would
        a real crash, then adopts the hash range.
        """
        for replica in self._groups[sid].replicas:
            replica.shard.kill()

    # -- submission -----------------------------------------------------
    async def submit(self, op: str, spec: CodecSpec, payload: Any) -> Any:
        """Route one request; failover-retry until the budget runs dry.

        Raises :class:`ShardOverloaded` when the owner shard's
        admission slice is full (shed load, never forwarded),
        :class:`NoHealthyShards` when the whole cluster is down, and
        :class:`~repro.resilience.errors.ResilienceExhausted` when
        every retry attempt died under it.
        """
        if not self._started or self._closed or self._closing:
            raise ServiceClosed("submit")
        key = route_key(spec, op, payload)
        policy = self.config.retry
        limit = self.config.per_shard_limit
        self._inflight += 1
        assert self._idle is not None
        self._idle.clear()
        self.stats.submitted += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight,
                                       self._inflight)
        last: BaseException | None = None
        try:
            for attempt in range(1, policy.max_attempts + 1):
                try:
                    sid = self._ring.lookup(key)
                except LookupError:
                    raise NoHealthyShards(self.config.shards) from None
                group = self._groups[sid]
                if group.inflight >= limit:
                    self.stats.rejected += 1
                    self._ctr_rejected.inc()
                    raise ShardOverloaded(sid, group.inflight, limit)
                replica = group.pick()
                replica.inflight += 1
                try:
                    value = await replica.shard.submit(op, spec, payload)
                except ShardDied as exc:
                    last = exc
                    replica.breaker.record_failure()
                    if replica.breaker.is_open:
                        self._adopt_if_dead(group)
                    self.stats.failovers += 1
                    self._ctr_failovers.inc(shard=sid)
                    if _TRACER.enabled:
                        with Span(_TRACER, "cluster.failover", "cluster",
                                  {"shard": sid, "attempt": attempt}):
                            pass
                    if attempt >= policy.max_attempts:
                        self.stats.errors += 1
                        raise ResilienceExhausted(
                            "cluster.forward", attempt, exc
                        ) from exc
                    _METRICS.counter(
                        "hpdr_retries_total",
                        "recovery re-attempts performed",
                    ).inc(site="cluster.forward")
                    await asyncio.sleep(policy.delay(attempt))
                except ServiceOverloaded as exc:
                    # The shard's own admission control fired (shared
                    # shard, or raced slots): surface as typed
                    # per-shard backpressure, breaker untouched.
                    self.stats.rejected += 1
                    self._ctr_rejected.inc()
                    if isinstance(exc, ShardOverloaded):
                        raise
                    raise ShardOverloaded(sid, exc.depth, exc.limit) from exc
                except Exception:
                    # A request-level failure (codec error): the shard
                    # answered, so it is healthy — propagate untouched.
                    replica.breaker.record_success()
                    self.stats.errors += 1
                    raise
                else:
                    replica.breaker.record_success()
                    self.stats.completed += 1
                    self.stats.per_shard[sid] = \
                        self.stats.per_shard.get(sid, 0) + 1
                    ctr = self._req_children.get(sid)
                    if ctr is None:
                        ctr = self._req_children[sid] = \
                            self._ctr_requests.child(shard=sid)
                    ctr.inc()
                    return value
                finally:
                    replica.inflight -= 1
            raise ResilienceExhausted(  # pragma: no cover - loop exits above
                "cluster.forward", policy.max_attempts, last
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def compress(self, spec: CodecSpec, data: np.ndarray) -> bytes:
        out = await self.submit("compress", spec, data)
        return bytes(out) if isinstance(out, (bytearray, memoryview)) else out

    async def decompress(self, spec: CodecSpec, blob: bytes) -> np.ndarray:
        return np.asarray(await self.submit("decompress", spec, blob))

    async def retrieve(
        self,
        spec: CodecSpec,
        archive: bytes,
        *,
        eps: float | None = None,
        resolution: int | None = None,
    ) -> np.ndarray:
        """Bounded retrieval from an ``HPGX`` progressive archive."""
        from repro.progressive import make_retrieve_request

        payload = make_retrieve_request(archive, eps=eps, resolution=resolution)
        return np.asarray(await self.submit("retrieve", spec, payload))

    # -- drain / shutdown -----------------------------------------------
    async def drain(self) -> None:
        """Wait until no request is in flight at the router."""
        if not self._started:
            return
        if self._inflight:
            assert self._idle is not None
            await self._idle.wait()

    async def close(self) -> None:
        """Stop admission, drain, stop probing, close every shard."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closing = True
        await self.drain()
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        backends = [
            replica.shard
            for group in self._groups.values()
            for replica in group.replicas
        ]
        await asyncio.gather(*(b.close() for b in backends))
        self._closed = True
