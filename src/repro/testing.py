"""Conformance kit for device-adapter authors.

The paper's extensibility story (Section III-C) is "implement a new
device adapter".  :func:`check_adapter` is the executable contract: run
it against a new backend and it verifies everything the framework
assumes — GEM/DEM semantics, shape handling, batch-order stability, and
numerical agreement with the reference serial backend on real reduction
kernels.

Usage (e.g. in a downstream package's test suite)::

    from repro.testing import check_adapter
    check_adapter(MyKokkosAdapter())
"""

from __future__ import annotations

import numpy as np

from repro.core.functor import FnDomain, FnLocality


class AdapterConformanceError(AssertionError):
    """A backend violated the adapter contract."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise AdapterConformanceError(message)


def check_adapter(adapter, rng: np.random.Generator | None = None) -> None:
    """Run the full conformance suite against ``adapter``.

    Raises :class:`AdapterConformanceError` on the first violation;
    returns ``None`` when the backend conforms.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    _check_gem_identity(adapter, rng)
    _check_gem_elementwise(adapter, rng)
    _check_gem_shape_change(adapter, rng)
    _check_gem_order_stability(adapter)
    _check_gem_empty_batch(adapter)
    _check_dem_stages(adapter)
    _check_reference_agreement(adapter, rng)
    _check_real_kernels(adapter, rng)


def _check_gem_identity(adapter, rng) -> None:
    batch = rng.normal(size=(7, 3, 4))
    out = adapter.execute_group_batch(FnLocality(lambda b: b.copy(), "id"), batch)
    _require(np.array_equal(out, batch), "GEM identity functor altered data")


def _check_gem_elementwise(adapter, rng) -> None:
    batch = rng.normal(size=(5, 6))
    out = adapter.execute_group_batch(FnLocality(lambda b: b * 2 + 1, "affine"), batch)
    _require(np.allclose(out, batch * 2 + 1), "GEM elementwise result wrong")


def _check_gem_shape_change(adapter, rng) -> None:
    batch = rng.normal(size=(4, 8))
    out = adapter.execute_group_batch(
        FnLocality(lambda b: b.sum(axis=-1, keepdims=True), "sum"), batch
    )
    _require(out.shape == (4, 1), "GEM must preserve the leading group axis")
    _require(np.allclose(out[:, 0], batch.sum(axis=1)),
             "GEM shape-changing functor result wrong")


def _check_gem_order_stability(adapter) -> None:
    batch = np.arange(12, dtype=np.float64).reshape(12, 1)
    out = adapter.execute_group_batch(FnLocality(lambda b: b, "id"), batch)
    _require(np.array_equal(out, batch),
             "GEM reordered groups: results must stay in submission order")


def _check_gem_empty_batch(adapter) -> None:
    batch = np.zeros((0, 4))
    out = adapter.execute_group_batch(FnLocality(lambda b: b, "id"), batch)
    _require(out.shape[0] == 0, "GEM must pass empty batches through")


def _check_dem_stages(adapter) -> None:
    functor = FnDomain(lambda d: d + "b", lambda d: d + "c", name="chain")
    out = adapter.execute_domain(functor, "a")
    _require(out == "abc", "DEM must run stages in order with global sync")


def _check_reference_agreement(adapter, rng) -> None:
    from repro.adapters import get_adapter

    serial = get_adapter("serial")
    batch = rng.normal(size=(9, 5, 5))
    f = FnLocality(lambda b: np.tanh(b) + b**2, "mix")
    ref = serial.execute_group_batch(f, batch)
    out = adapter.execute_group_batch(f, batch)
    _require(np.array_equal(ref, out),
             "backend result differs from the serial reference "
             "(bit-exact agreement is the portability guarantee)")


def _check_real_kernels(adapter, rng) -> None:
    """The acid test: full reduction streams must be byte-identical."""
    from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX

    data = rng.normal(size=(12, 16)).astype(np.float32)
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)

    ref = MGARDX(cfg).compress(data)
    got = MGARDX(cfg, adapter=adapter).compress(data)
    _require(ref == got, "MGARD-X stream differs on this backend")

    ref = ZFPX(rate=10).compress(data)
    got = ZFPX(rate=10, adapter=adapter).compress(data)
    _require(ref == got, "ZFP-X stream differs on this backend")

    keys = rng.integers(0, 40, size=2000).astype(np.int64)
    ref = HuffmanX().compress_keys(keys, 64)
    got = HuffmanX(adapter=adapter).compress_keys(keys, 64)
    _require(ref == got, "Huffman-X stream differs on this backend")
