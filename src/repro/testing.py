"""Conformance kit for device-adapter authors.

The paper's extensibility story (Section III-C) is "implement a new
device adapter".  :func:`check_adapter` is the executable contract: run
it against a new backend and it verifies everything the framework
assumes — GEM/DEM semantics, shape handling, batch-order stability, and
numerical agreement with the reference serial backend on real reduction
kernels.

Usage (e.g. in a downstream package's test suite)::

    from repro.testing import check_adapter
    check_adapter(MyKokkosAdapter())
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.functor import FnDomain, FnLocality


class AdapterConformanceError(AssertionError):
    """A backend violated the adapter contract."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise AdapterConformanceError(message)


def check_adapter(adapter, rng: np.random.Generator | None = None) -> None:
    """Run the full conformance suite against ``adapter``.

    Raises :class:`AdapterConformanceError` on the first violation;
    returns ``None`` when the backend conforms.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    _check_gem_identity(adapter, rng)
    _check_gem_elementwise(adapter, rng)
    _check_gem_shape_change(adapter, rng)
    _check_gem_order_stability(adapter)
    _check_gem_empty_batch(adapter)
    _check_batched_submission(adapter, rng)
    _check_dem_stages(adapter)
    _check_reference_agreement(adapter, rng)
    _check_real_kernels(adapter, rng)


def _check_gem_identity(adapter, rng) -> None:
    batch = rng.normal(size=(7, 3, 4))
    out = adapter.execute_group_batch(FnLocality(lambda b: b.copy(), "id"), batch)
    _require(np.array_equal(out, batch), "GEM identity functor altered data")


def _check_gem_elementwise(adapter, rng) -> None:
    batch = rng.normal(size=(5, 6))
    out = adapter.execute_group_batch(FnLocality(lambda b: b * 2 + 1, "affine"), batch)
    _require(np.allclose(out, batch * 2 + 1), "GEM elementwise result wrong")


def _check_gem_shape_change(adapter, rng) -> None:
    batch = rng.normal(size=(4, 8))
    out = adapter.execute_group_batch(
        FnLocality(lambda b: b.sum(axis=-1, keepdims=True), "sum"), batch
    )
    _require(out.shape == (4, 1), "GEM must preserve the leading group axis")
    _require(np.allclose(out[:, 0], batch.sum(axis=1)),
             "GEM shape-changing functor result wrong")


def _check_gem_order_stability(adapter) -> None:
    batch = np.arange(12, dtype=np.float64).reshape(12, 1)
    out = adapter.execute_group_batch(FnLocality(lambda b: b, "id"), batch)
    _require(np.array_equal(out, batch),
             "GEM reordered groups: results must stay in submission order")


def _check_gem_empty_batch(adapter) -> None:
    batch = np.zeros((0, 4))
    out = adapter.execute_group_batch(FnLocality(lambda b: b, "id"), batch)
    _require(out.shape[0] == 0, "GEM must pass empty batches through")


def _check_batched_submission(adapter, rng) -> None:
    """Contract the serving layer's micro-batching relies on.

    1. ``map_tasks`` preserves submission order, runs each task exactly
       once, and passes empty task lists through;
    2. GEM is **concat-equivalent**: executing the concatenation of two
       batches equals executing them separately and concatenating the
       results.  This is what lets the codecs' ``compress_batch`` fuse
       many requests' blocks into one launch and slice the records back
       out byte-identically;
    3. every codec exposing ``compress_batch``/``decompress_batch``
       honors that contract on this backend — batched streams equal the
       per-item streams byte for byte, and a non-uniform batch raises
       ``ValueError`` (the signal the serving layer's per-item fallback
       keys on).
    """
    # map_tasks: order, exactly-once, empty.
    calls: list[int] = []

    def task(i: int) -> int:
        calls.append(i)
        return i * i

    out = adapter.map_tasks(task, range(8))
    _require(out == [i * i for i in range(8)],
             "map_tasks must return results in submission order")
    _require(sorted(calls) == list(range(8)),
             "map_tasks must run every task exactly once")
    _require(adapter.map_tasks(task, []) == [],
             "map_tasks must pass empty task lists through")
    _require(adapter.parallel_width() >= 1,
             "parallel_width must be >= 1")

    # GEM concat-equivalence.
    a = rng.normal(size=(5, 4, 4))
    b = rng.normal(size=(3, 4, 4))
    f = FnLocality(lambda blk: np.tanh(blk) * 3, "concat")
    fused = adapter.execute_group_batch(f, np.concatenate([a, b]))
    split = np.concatenate(
        [adapter.execute_group_batch(f, a), adapter.execute_group_batch(f, b)]
    )
    _require(np.array_equal(fused, split),
             "GEM must be concat-equivalent: fused batches must match "
             "separately executed sub-batches (micro-batching contract)")

    _check_codec_batch_paths(adapter, rng)


def _check_codec_batch_paths(adapter, rng) -> None:
    """Batched entry points must be byte-identical to per-item calls.

    Discovers the batch path the same way the serving worker does
    (``getattr(codec, f"{op}_batch")``), so any codec that grows one is
    automatically held to the contract on every backend.
    """
    from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX

    cfg = Config(error_bound=1e-2, error_mode=ErrorMode.REL)
    floats = [
        np.ascontiguousarray(rng.standard_normal((12, 16)).astype(np.float32))
        for _ in range(5)
    ]
    blobs_in = [
        rng.integers(0, 48, size=3000, dtype=np.int64).astype(np.uint8).tobytes()
        for _ in range(5)
    ]
    cases = [
        ("mgard-x", lambda: MGARDX(cfg, adapter=adapter), floats,
         floats[0][:6, :6]),
        ("zfp-x", lambda: ZFPX(rate=8, adapter=adapter), floats,
         floats[0][:6, :6]),
        ("huffman-x", lambda: HuffmanX(adapter=adapter), blobs_in,
         blobs_in[0][:17]),
    ]
    for name, build, payloads, odd in cases:
        codec = build()
        if getattr(codec, "compress_batch", None) is None:
            continue
        want = [codec.compress(p) for p in payloads]
        got = codec.compress_batch(payloads)
        _require(
            [bytes(b) for b in got] == [bytes(b) for b in want],
            f"{name}.compress_batch differs from per-item streams",
        )
        back = codec.decompress_batch(want)
        ref = [codec.decompress(b) for b in want]
        _require(
            all(np.array_equal(np.asarray(g), np.asarray(r))
                for g, r in zip(back, ref)),
            f"{name}.decompress_batch differs from per-item results",
        )
        # Non-uniform batches must raise ValueError — the worker's
        # signal to fall back to per-item execution.
        try:
            codec.compress_batch([payloads[0], odd])
        except ValueError:
            pass
        else:
            _require(False,
                     f"{name}.compress_batch accepted a non-uniform batch "
                     "(must raise ValueError for the per-item fallback)")


def _check_dem_stages(adapter) -> None:
    functor = FnDomain(lambda d: d + "b", lambda d: d + "c", name="chain")
    out = adapter.execute_domain(functor, "a")
    _require(out == "abc", "DEM must run stages in order with global sync")


def _check_reference_agreement(adapter, rng) -> None:
    from repro.adapters import get_adapter

    serial = get_adapter("serial")
    batch = rng.normal(size=(9, 5, 5))
    f = FnLocality(lambda b: np.tanh(b) + b**2, "mix")
    ref = serial.execute_group_batch(f, batch)
    out = adapter.execute_group_batch(f, batch)
    _require(np.array_equal(ref, out),
             "backend result differs from the serial reference "
             "(bit-exact agreement is the portability guarantee)")


def _check_real_kernels(adapter, rng) -> None:
    """The acid test: full reduction streams must be byte-identical."""
    from repro import Config, ErrorMode, HuffmanX, MGARDX, ZFPX

    data = rng.normal(size=(12, 16)).astype(np.float32)
    cfg = Config(error_bound=1e-3, error_mode=ErrorMode.REL)

    ref = MGARDX(cfg).compress(data)
    got = MGARDX(cfg, adapter=adapter).compress(data)
    _require(ref == got, "MGARD-X stream differs on this backend")

    ref = ZFPX(rate=10).compress(data)
    got = ZFPX(rate=10, adapter=adapter).compress(data)
    _require(ref == got, "ZFP-X stream differs on this backend")

    keys = rng.integers(0, 40, size=2000).astype(np.int64)
    ref = HuffmanX().compress_keys(keys, 64)
    got = HuffmanX(adapter=adapter).compress_keys(keys, 64)
    _require(ref == got, "Huffman-X stream differs on this backend")


# ----------------------------------------------------------------------
# Serving-path conformance
# ----------------------------------------------------------------------
def check_service(
    adapter: str = "serial",
    codecs: tuple[str, ...] = ("mgard-x", "zfp-x", "huffman-x"),
    batch_sizes: tuple[int, ...] = (1, 7, 64),
    shape: tuple[int, ...] = (16, 16),
    threads: int | None = None,
    rng: np.random.Generator | None = None,
    workers: int = 1,
    process: bool = False,
    service_factory: Any | None = None,
    include_retrieve: bool = True,
) -> None:
    """Differential conformance of the HPDR-Serve request path.

    For every codec and batch size, submits that many concurrent
    requests to a :class:`~repro.serve.service.ReductionService` on
    ``adapter`` and requires each response to be **byte-identical** to a
    fresh single-shot codec call: micro-batching, context reuse, worker
    routing — and, with ``process=True``, the multi-process worker pool
    and its pickle boundary — must never change a stream.  Decompressing the served
    streams through the service must likewise reproduce the single-shot
    arrays exactly.

    ``service_factory`` swaps the service under test: it receives each
    case's :class:`~repro.serve.service.ServiceConfig` and must return
    an unstarted async-context-manager service with the same request
    surface.  The cluster suite passes a factory wrapping the config in
    a :class:`~repro.cluster.router.ClusterService`, which makes this
    one checker the byte-identity oracle for the cluster front door
    too.

    With ``include_retrieve=True`` the suite also drives the
    ``retrieve`` op: a progressive archive is refactored up front and
    full-prefix, bounded-eps and bounded-resolution requests must each
    reproduce the direct :class:`~repro.progressive.ProgressiveRetriever`
    answer byte for byte through the same front door.

    Runs its own event loop; call from synchronous test code.  Raises
    :class:`AdapterConformanceError` on the first divergence.
    """
    import asyncio

    from repro.serve import (
        BatchLimits,
        CodecSpec,
        ReductionService,
        ServiceConfig,
    )

    factory = ReductionService if service_factory is None else service_factory
    rng = rng if rng is not None else np.random.default_rng(0)

    # Reference streams are computed synchronously *before* the event
    # loop starts: a direct codec call inside the async driver would
    # stall the loop (Statica rule HPL101) — and the references do not
    # depend on the service anyway.
    cases = []
    for codec in codecs:
        spec = CodecSpec(codec)
        for n in batch_sizes:
            arrays = [
                np.ascontiguousarray(
                    rng.standard_normal(shape).astype(np.float32)
                )
                for _ in range(n)
            ]
            reference = spec.build()
            want_blobs = [reference.compress(a) for a in arrays]
            want_arrays = [reference.decompress(b) for b in want_blobs]
            cases.append((codec, spec, n, arrays, want_blobs, want_arrays))

    retrieve_case = None
    if include_retrieve:
        # Like the compress references, the archive and the expected
        # reconstructions are computed synchronously before the loop
        # starts (Statica rule HPL101).
        from repro import Config, ProgressiveMGARD
        from repro.progressive import ProgressiveRetriever, archive_bytes

        field = np.ascontiguousarray(
            rng.standard_normal((12, 16)).astype(np.float32)
        )
        index, segments = ProgressiveMGARD(
            Config(error_bound=1e-3)
        ).refactor(field)
        archive = archive_bytes(index, segments)
        eps = float(index.frontier()[0].error_bound) * 1.0001
        oracle = ProgressiveRetriever()
        requests = [
            {},                    # full prefix
            {"eps": eps},          # bounded error
            {"resolution": 2},     # bounded resolution
        ]
        wants = [
            oracle.retrieve(archive, **kwargs)[0] for kwargs in requests
        ]
        retrieve_case = (archive, requests, wants)

    async def run() -> None:
        for codec, spec, n, arrays, want_blobs, want_arrays in cases:
            cfg = ServiceConfig(
                limits=BatchLimits(
                    max_batch=max(1, min(n, 64)), max_latency_s=0.005
                ),
                max_pending=max(256, 2 * n),
                adapter=adapter,
                threads=threads,
                workers=workers,
                process=process,
            )
            async with factory(cfg) as svc:
                got_blobs = await asyncio.gather(
                    *(svc.compress(spec, a) for a in arrays)
                )
                _require(
                    list(got_blobs) == want_blobs,
                    f"served {codec} stream differs from single-shot "
                    f"(adapter={adapter}, batch={n})",
                )
                got_arrays = await asyncio.gather(
                    *(svc.decompress(spec, b) for b in got_blobs)
                )
                for got, want in zip(got_arrays, want_arrays):
                    _require(
                        np.array_equal(np.asarray(got), want),
                        f"served {codec} decompression differs from "
                        f"single-shot (adapter={adapter}, batch={n})",
                    )
        if retrieve_case is not None:
            archive, requests, wants = retrieve_case
            spec = CodecSpec("mgard-x")
            cfg = ServiceConfig(
                limits=BatchLimits(max_batch=4, max_latency_s=0.005),
                adapter=adapter,
                threads=threads,
                workers=workers,
                process=process,
            )
            async with factory(cfg) as svc:
                got = await asyncio.gather(
                    *(svc.retrieve(spec, archive, **kw) for kw in requests)
                )
                for kw, g, want in zip(requests, got, wants):
                    _require(
                        np.asarray(g).dtype == want.dtype
                        and np.array_equal(np.asarray(g), want),
                        f"served retrieve ({kw or 'full'}) differs from "
                        f"direct retrieval (adapter={adapter})",
                    )

    asyncio.run(run())


# ----------------------------------------------------------------------
# Auto-tuner conformance
# ----------------------------------------------------------------------
def check_tuner(
    strategy_factory: Any | None = None,
    seed: int = 7,
    budget: int = 24,
) -> None:
    """Conformance suite for tuning strategies and the AutoTuner contract.

    Three properties every search strategy (and the tuner driving it)
    must hold, checked on a synthetic knob space with a known cost
    surface — no codecs, no wall clock, fully deterministic:

    1. **determinism** — two strategies built with the same seed,
       driven by the same costs, propose the *identical* configuration
       sequence.  A tuner whose trajectory depends on anything but
       ``(seed, costs)`` cannot be replayed or debugged;
    2. **bounds** — every proposed configuration stays inside the knob
       space: only declared knobs, only declared values;
    3. **byte identity** — a full :class:`~repro.tune.AutoTuner` run
       against a runner whose digest *changes* for some configs never
       persists (or reports best) a config whose output bytes differ
       from the default config's, no matter how fast it claims to be.

    ``strategy_factory(space, seed=...)`` swaps the strategy under
    test; the default is :class:`~repro.tune.CoordinateDescent`.
    Raises :class:`AdapterConformanceError` on the first violation.
    """
    from repro.tune import (
        AutoTuner,
        CoordinateDescent,
        Knob,
        KnobSpace,
        Measurement,
        TuningKey,
    )

    factory = (CoordinateDescent if strategy_factory is None
               else strategy_factory)
    space = KnobSpace((
        Knob("alpha", (1, 2, 4, 8), 4),
        Knob("beta", ("x", "y", "z"), "y"),
        Knob("gamma", (0.5, 1.0, 2.0), 1.0, stream_affecting=True),
    ))

    def cost(config: dict) -> float:
        # Convex-ish surface with a unique optimum at alpha=8, beta=z.
        penalty = {"x": 0.4, "y": 0.2, "z": 0.0}[config["beta"]]
        return 1.0 / float(config["alpha"]) + penalty + 0.1 * float(
            config["gamma"]
        )

    # 1 + 2: identical proposal sequences, all inside the space.
    traces: list[list[tuple]] = []
    for _ in range(2):
        strat = factory(space, seed=seed)
        trace: list[tuple] = []
        for _ in range(budget):
            if strat.done:
                break
            config = strat.ask()
            _require(space.contains(config),
                     f"strategy proposed a config outside the knob space: "
                     f"{config}")
            trace.append(tuple(sorted(config.items())))
            strat.tell(config, cost(config))
        traces.append(trace)
    _require(traces[0] == traces[1],
             "strategy is not deterministic: same seed and same costs "
             "produced different proposal sequences")
    _require(len(traces[0]) > 1,
             "strategy gave up after a single proposal")

    # 3: byte-different configs must never be persisted or win.
    # ``gamma`` is the trap: any value but the default flips the digest
    # while looking 10x faster — exactly the config an unguarded tuner
    # would fall for.
    class _ByteTrapRunner:
        def __call__(self, config: dict) -> Measurement:
            changed = config["gamma"] != 1.0
            return Measurement(
                config=dict(config),
                seconds=0.01 if changed else cost(config),
                digest="trap" if changed else "baseline",
            )

    class _RecordingCache:
        def __init__(self) -> None:
            self.puts: list = []

        def put(self, key, entry) -> None:
            self.puts.append((key, entry))

    cache = _RecordingCache()
    tuner = AutoTuner(space, seed=seed, budget=budget)
    report = tuner.tune(
        TuningKey("conformance", "<f4", (2, 64), "test"),
        _ByteTrapRunner(), cache=cache, source="check_tuner",
    )
    _require(report.best_config["gamma"] == 1.0,
             "tuner accepted a config whose output bytes differ from the "
             "default's (the byte-identity guard is broken)")
    _require(report.digest == "baseline",
             "tuner's winning digest is not the default config's digest")
    _require(report.rejected > 0,
             "tuner never rejected the byte-changing trap configs — the "
             "guard was not exercised")
    for _key, entry in cache.puts:
        _require(entry.digest == "baseline",
                 "tuner persisted an entry whose digest differs from the "
                 "default config's output")
        _require(entry.config.get("gamma", 1.0) == 1.0,
                 "tuner persisted a byte-changing config")


# ----------------------------------------------------------------------
# Progressive-retrieval conformance
# ----------------------------------------------------------------------
def default_progressive_datasets() -> list[tuple[str, np.ndarray]]:
    """The dtype/shape matrix :func:`check_progressive` runs by default.

    One array per class the retrieval engine must handle: the three
    Table III synthetic stand-ins (3-D FP32 x2, 4-D FP64) plus plain
    1-D FP32 and 2-D FP64 fields.
    """
    from repro.data import e3sm_like, nyx_like, xgc_like

    rng = np.random.default_rng(11)
    wave = np.sin(np.linspace(0, 9, 257, dtype=np.float32))
    return [
        ("nyx-f32-3d", nyx_like((12, 14, 16), seed=1)),
        ("xgc-f64-4d", xgc_like((2, 6, 24, 6), seed=2)),
        ("e3sm-f32-3d", e3sm_like((10, 12, 18), seed=3)),
        ("wave-f32-1d",
         wave + rng.normal(0, 0.05, wave.shape).astype(np.float32)),
        ("noise-f64-2d", rng.normal(size=(21, 17))),
    ]


def check_progressive(
    datasets: list[tuple[str, np.ndarray]] | None = None,
    error_bound: float = 1e-3,
    eps_count: int = 3,
    adapter: Any = None,
) -> None:
    """Conformance suite for the progressive-retrieval contract.

    For every named dataset:

    1. **byte identity** — retrieving the full segment prefix must
       equal ``MGARDX(config).decompress(compress(data))`` byte for
       byte (same config, same dict size);
    2. **frontier monotonicity** — the recorded bounds of the
       retrievable frontier strictly decrease; a group-complete
       (``--resolution L``) prefix achieves exactly its recorded bound
       and stays within a few percent of the best earlier prefix (the
       recompose is linear, so a freshly added group's coarse planes
       can cancel a hair before its fine planes land), with the full
       resolution reaching the stream floor;
    3. **error-bound satisfaction** — for at least ``eps_count``
       eps values spanning the frontier, the achieved max error is
       ``<= eps`` while **strictly fewer** bytes than the full stream
       are fetched;
    4. the full stream's recorded floor satisfies the configured
       absolute bound.

    Raises :class:`AdapterConformanceError` on the first violation.
    """
    from repro import Config, MGARDX, ProgressiveMGARD
    from repro.progressive import ProgressiveRetriever, archive_bytes

    if datasets is None:
        datasets = default_progressive_datasets()
    config = Config(error_bound=error_bound)
    codec = ProgressiveMGARD(config, adapter=adapter)
    retriever = ProgressiveRetriever(adapter=adapter)
    for name, data in datasets:
        index, segments = codec.refactor(data)
        archive = archive_bytes(index, segments)

        # 1. Full prefix == one-shot decompression, byte for byte.
        oneshot = MGARDX(config, adapter=adapter, dict_size=codec.dict_size)
        want = oneshot.decompress(oneshot.compress(data))
        got, report = retriever.retrieve(archive)
        _require(got.dtype == want.dtype and got.tobytes() == want.tobytes(),
                 f"{name}: full-prefix retrieval is not byte-identical "
                 "to one-shot decompression")
        _require(report.bytes_fetched == index.total_bytes,
                 f"{name}: full retrieval did not fetch the whole stream")

        # 2. Monotone refinement.
        frontier = index.frontier()
        bounds = [r.error_bound for r in frontier]
        _require(all(b < a for a, b in zip(bounds, bounds[1:])),
                 f"{name}: frontier bounds are not strictly decreasing")
        data64 = np.asarray(data, dtype=np.float64)
        best = float("inf")
        last_err = float("inf")
        for level in range(1, index.ngroups + 1):
            coarse, rep = retriever.retrieve(archive, resolution=level)
            err = float(np.max(np.abs(
                np.asarray(coarse, dtype=np.float64) - data64
            )))
            _require(err <= rep.error_bound + 1e-12 * max(1.0, err),
                     f"{name}: resolution-{level} error {err:.3e} exceeds "
                     f"its recorded bound {rep.error_bound:.3e}")
            _require(err <= best * 1.05,
                     f"{name}: resolution-{level} error {err:.3e} regressed "
                     f"past the best earlier prefix ({best:.3e})")
            best = min(best, err)
            last_err = err
        _require(abs(last_err - index.floor) <= 1e-12 * max(1.0, index.floor),
                 f"{name}: full-resolution error {last_err:.3e} does not "
                 f"reach the stream floor {index.floor:.3e}")

        # 3. eps sweep: bound satisfied with strictly fewer bytes.
        targets = [b for b in bounds if b > 0][:-1] or bounds[:1]
        while len(targets) < eps_count:
            targets.append(targets[-1] * 2)
        for eps in [t * 1.0001 for t in targets[:max(eps_count, 3)]]:
            coarse, rep = retriever.retrieve(archive, eps=eps)
            err = float(np.max(np.abs(
                np.asarray(coarse, dtype=np.float64) - data64
            )))
            _require(err <= eps,
                     f"{name}: eps={eps:.3e} retrieval achieved {err:.3e}")
            _require(rep.bytes_fetched < rep.total_bytes,
                     f"{name}: eps={eps:.3e} fetched the whole stream "
                     f"({rep.bytes_fetched}/{rep.total_bytes} B)")

        # 4. The stream's floor honors the configured bound.
        abs_eb = config.absolute_bound(data)
        _require(index.floor <= abs_eb,
                 f"{name}: stream floor {index.floor:.3e} exceeds the "
                 f"configured absolute bound {abs_eb:.3e}")
