"""Codec specifications and batch/context keying for HPDR-Serve.

A :class:`CodecSpec` is the hashable description of one reduction
configuration (codec + bound/rate parameters).  The service uses it in
two keys:

* the **batch key** — ``(op, spec.key(), dtype, shape)`` for arrays,
  ``(op, spec.key(), "blob", size_class)`` for compressed streams —
  groups requests the micro-batcher may execute together.  Compress
  batches share the exact shape so the vectorized codec fast paths
  (e.g. :meth:`repro.ZFPX.compress_batch`) apply and the codec's CMM
  contexts are reused across every request in the batch;
* the **context key** — ``("serve", spec.key(), dtype, shape_class)``
  — addresses the pinned :class:`~repro.core.context.ReductionContext`
  a worker keeps per configuration.  The shape *class* (rank plus
  power-of-two element-count bucket) bounds how many serve contexts a
  many-shape workload can open while still separating workloads with
  very different working-set sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

#: codec names the service accepts (the CLI envelope vocabulary).
SERVABLE_CODECS = ("mgard-x", "zfp-x", "huffman-x", "lz4", "sz")

#: request operations.  ``retrieve`` takes an ``HPRQ`` envelope (see
#: :mod:`repro.progressive.archive`) and answers with the bounded
#: reconstruction; like ``decompress`` it batches and routes by blob
#: size class, so it rides the cluster router unchanged.
OPS = ("compress", "decompress", "retrieve")


def _ceil_pow2(n: int) -> int:
    return 1 << max(0, int(n - 1).bit_length()) if n > 0 else 1


def shape_class(shape: tuple[int, ...]) -> tuple[int, int]:
    """Bucket a shape as ``(rank, next-pow2 element count)``.

    Contexts keyed by the class are shared by near-identical working
    sets (the scratch buffers inside grow geometrically, so a class
    reaches its own zero-alloc steady state) without one pinned context
    per exact shape.
    """
    elems = 1
    for s in shape:
        elems *= int(s)
    return (len(shape), _ceil_pow2(elems))


def size_class(nbytes: int) -> int:
    """Power-of-two byte bucket for opaque compressed streams."""
    return _ceil_pow2(int(nbytes))


def payload_nbytes(payload) -> int:
    """Bytes a request payload contributes to batch byte budgets."""
    nbytes = getattr(payload, "nbytes", None)  # ndarray / memoryview
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return int(np.asarray(payload).nbytes)


@dataclass(frozen=True)
class CodecSpec:
    """Hashable description of one reduction configuration.

    Only the parameters the named codec actually consumes participate
    in :meth:`key`, so e.g. two ``zfp-x`` specs differing in an unused
    ``error_bound`` land in the same batch and share contexts.
    """

    name: str = "zfp-x"
    error_bound: float = 1e-3
    error_mode: str = "rel"
    rate: float = 8.0
    dict_size: int = 4096
    chunk_size: int = 1024

    def __post_init__(self) -> None:
        if self.name not in SERVABLE_CODECS:
            raise ValueError(
                f"unknown codec {self.name!r}; servable: {SERVABLE_CODECS}"
            )
        if self.error_mode not in ("rel", "abs"):
            raise ValueError(f"error_mode must be rel|abs, got {self.error_mode!r}")
        # The spec is frozen, so its key tuple never changes: compute it
        # once here instead of on every batch_key() call (the service
        # builds a batch key per admitted request).
        object.__setattr__(self, "_key", self._compute_key())

    # ------------------------------------------------------------------
    def key(self) -> tuple[Hashable, ...]:
        """Minimal parameter tuple identifying this configuration."""
        return self._key

    def _compute_key(self) -> tuple[Hashable, ...]:
        if self.name == "zfp-x":
            return (self.name, self.rate)
        if self.name == "huffman-x":
            return (self.name, self.chunk_size)
        if self.name == "lz4":
            return (self.name,)
        # mgard-x / sz: error-bounded codecs.
        if self.name == "mgard-x":
            return (self.name, self.error_bound, self.error_mode, self.dict_size)
        return (self.name, self.error_bound, self.error_mode)

    def build(self, adapter: Any = None, context_cache: Any = None) -> Any:
        """Instantiate the codec on ``adapter`` sharing ``context_cache``.

        Every returned object satisfies ``compress(data) -> bytes`` /
        ``decompress(bytes) -> ndarray``; codecs with CMM support are
        handed the worker's shared cache so their working buffers
        persist across batches.
        """
        from repro import Config, ErrorMode, HuffmanX, LZ4, MGARDX, SZ, ZFPX

        if self.name == "zfp-x":
            return ZFPX(rate=self.rate, adapter=adapter,
                        context_cache=context_cache)
        if self.name == "huffman-x":
            return HuffmanX(adapter=adapter, chunk_size=self.chunk_size,
                            context_cache=context_cache)
        if self.name == "lz4":
            return LZ4(adapter=adapter)
        mode = ErrorMode.ABS if self.error_mode == "abs" else ErrorMode.REL
        cfg = Config(error_bound=self.error_bound, error_mode=mode)
        if self.name == "mgard-x":
            return MGARDX(cfg, adapter=adapter, context_cache=context_cache,
                          dict_size=self.dict_size)
        return SZ(cfg, adapter=adapter)

    # ------------------------------------------------------------------
    def batch_key(self, op: str, payload) -> tuple[Hashable, ...]:
        """Grouping key for the micro-batcher (see module docstring)."""
        if op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {op!r}")
        if op == "compress":
            arr = np.asarray(payload)
            return (op,) + self.key() + (arr.dtype.str, arr.shape)
        return (op,) + self.key() + ("blob", size_class(len(payload)))

    def context_key(self, op: str, payload) -> tuple[Hashable, ...]:
        """Serve-layer CMM context key: (codec, dtype, shape-class)."""
        if op == "compress":
            arr = np.asarray(payload)
            return ("serve",) + self.key() + (arr.dtype.str,
                                              shape_class(arr.shape))
        return ("serve",) + self.key() + ("blob", (1, size_class(len(payload))))
