"""Deadline-based micro-batch planning (pure, clock-injected).

:class:`MicroBatchPlanner` is the decision core of the service's
batcher, deliberately free of asyncio, threads and wall clocks: callers
pass ``now`` explicitly, which is what makes the batching invariants
*property-testable* with a synthetic clock (``tests/serve``).  The
asyncio front end feeds it ``loop.time()`` and arms one timer for
:meth:`next_deadline`.

Flush policy (paper Fig. 9 applied to request traffic — aggregate small
calls until the device-side batch is worth launching):

* **size** — a key's open batch reaches ``max_batch`` requests;
* **bytes** — admitting the next request would push the open batch past
  ``max_bytes`` (the batch is closed first, so no flush ever exceeds
  the byte bound unless a *single* request alone does — oversized
  requests flush as singletons immediately);
* **deadline** — ``max_latency_s`` elapsed since the batch's first
  request arrived (:meth:`due`);
* **idle** — the caller detected there is nothing to wait *for*
  (:meth:`close_key`): batching trades latency for launch efficiency,
  but when the admitted request is the only one in flight no second
  request can join its batch before it completes — holding it for the
  deadline would add ``max_latency_s`` of pure latency per request and
  collapse a single closed-loop client's throughput (the service flushes
  immediately instead, so ``batch=1`` traffic performs like an
  unbatched service);
* **drain** — explicit :meth:`flush_all` on shutdown.

Invariants (enforced by the property suite):

1. every added item appears in exactly one flush, unless discarded
   (cancelled) first — never zero, never twice;
2. ``len(flush.items) <= max_batch`` always;
3. ``flush.nbytes <= max_bytes`` unless the flush is a single item;
4. after ``due(now)`` returns, no open batch is older than
   ``max_latency_s`` at time ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass(frozen=True)
class BatchLimits:
    """Flush bounds for the micro-batcher."""

    max_batch: int = 16
    max_bytes: int = 4 << 20
    max_latency_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {self.max_bytes}")
        if self.max_latency_s < 0:
            raise ValueError(
                f"max_latency_s must be >= 0, got {self.max_latency_s}"
            )


@dataclass
class Flush:
    """One closed batch, ready for worker execution."""

    key: Hashable
    items: list[Any]
    nbytes: int
    opened_at: float
    reason: str  # "size" | "bytes" | "deadline" | "idle" | "drain"


@dataclass
class _Open:
    """A key's accumulating batch (per-item sizes kept for discard)."""

    opened_at: float
    items: list[Any] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)
    nbytes: int = 0


class MicroBatchPlanner:
    """Groups keyed items into bounded, deadline-flushed batches."""

    def __init__(self, limits: BatchLimits | None = None) -> None:
        self.limits = limits if limits is not None else BatchLimits()
        self._open: dict[Hashable, _Open] = {}

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Items currently waiting in open batches."""
        return sum(len(o.items) for o in self._open.values())

    def open_batches(self) -> int:
        return len(self._open)

    # ------------------------------------------------------------------
    def add(self, key: Hashable, item: Any, nbytes: int, now: float) -> list[Flush]:
        """Admit one item; return any flushes it triggers (0, 1 or 2).

        Two flushes happen when the incoming item overflows the open
        batch's byte budget (the old batch closes "bytes") *and* is
        itself at or over ``max_bytes`` (it closes immediately as an
        oversized singleton).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        lim = self.limits
        flushes: list[Flush] = []
        batch = self._open.get(key)
        if batch is not None and batch.items and batch.nbytes + nbytes > lim.max_bytes:
            flushes.append(self._close(key, "bytes"))
            batch = None
        if batch is None:
            batch = _Open(opened_at=now)
            self._open[key] = batch
        batch.items.append(item)
        batch.sizes.append(nbytes)
        batch.nbytes += nbytes
        if len(batch.items) >= lim.max_batch:
            flushes.append(self._close(key, "size"))
        elif batch.nbytes >= lim.max_bytes:
            flushes.append(self._close(key, "bytes"))
        return flushes

    def discard(self, key: Hashable, item: Any) -> bool:
        """Remove a cancelled item from its open batch (identity match).

        Returns False when the item is not pending (already flushed or
        never added) — the flush path then ignores its dead future.
        """
        batch = self._open.get(key)
        if batch is None:
            return False
        for i, held in enumerate(batch.items):
            if held is item:
                del batch.items[i]
                batch.nbytes -= batch.sizes.pop(i)
                if not batch.items:
                    del self._open[key]
                return True
        return False

    # ------------------------------------------------------------------
    def next_deadline(self) -> float | None:
        """Earliest instant any open batch must flush, or None."""
        if not self._open:
            return None
        return (
            min(o.opened_at for o in self._open.values())
            + self.limits.max_latency_s
        )

    def due(self, now: float) -> list[Flush]:
        """Close every batch whose deadline has passed at ``now``."""
        lim = self.limits
        due_keys = [
            k for k, o in self._open.items()
            if o.opened_at + lim.max_latency_s <= now
        ]
        return [self._close(k, "deadline") for k in due_keys]

    def close_key(self, key: Hashable, reason: str = "idle") -> Flush | None:
        """Close ``key``'s open batch immediately (idle-flush heuristic).

        Returns None when the key has no open batch.  The caller decides
        *when* idleness holds (the planner has no view of in-flight
        work); the planner only guarantees the flush obeys invariant 1 —
        each item still appears in exactly one flush.
        """
        if key not in self._open:
            return None
        return self._close(key, reason)

    def flush_all(self, reason: str = "drain") -> list[Flush]:
        """Close every open batch (graceful drain, or a caller-detected
        idle system — see :meth:`close_key`)."""
        return [self._close(k, reason) for k in list(self._open)]

    # ------------------------------------------------------------------
    def _close(self, key: Hashable, reason: str) -> Flush:
        batch = self._open.pop(key)
        return Flush(
            key=key,
            items=batch.items,
            nbytes=batch.nbytes,
            opened_at=batch.opened_at,
            reason=reason,
        )
