"""HPDR-Serve: the asyncio micro-batching reduction service.

:class:`ReductionService` is the concurrent front end over the HPDR
codecs: callers ``await submit(...)`` individual compress/decompress
requests; the service groups them by :meth:`CodecSpec.batch_key
<repro.serve.spec.CodecSpec.batch_key>` with a deadline-based
micro-batcher and executes whole batches on a pool of workers that
keep pinned CMM contexts per ``(codec, dtype, shape-class)`` — the
paper's 3-queue/2-buffer philosophy (amortize per-call costs across
chunks) applied to request traffic.

Guarantees:

* **exactly-once** — every admitted request is answered exactly once:
  with its result, with the exception its execution raised, or not at
  all if the caller cancelled it first (the batcher then drops it);
* **byte-stability** — a batched response is byte-for-byte identical
  to the single-shot codec call (the property/conformance suites pin
  this against every codec and adapter);
* **admission control** — at most ``max_pending`` requests in flight;
  beyond it :meth:`submit` raises a typed
  :class:`~repro.serve.errors.ServiceOverloaded` *before* queueing, so
  shed load costs no worker time (backpressure, not collapse);
* **fault isolation** — per-request retry via
  :class:`~repro.resilience.policy.RetryPolicy` with degradation to a
  serial fallback codec: one poisoned request never fails its batch;
* **graceful drain** — :meth:`close` stops admission, flushes every
  open batch, waits for in-flight work, then releases worker pools.

Observability: always-on operational counters
(``hpdr_serve_requests_total``, ``hpdr_serve_rejected_total``,
``hpdr_serve_batches_total``) plus — when :mod:`repro.trace` is
enabled — ``serve.batch``/``serve.flush``/``serve.drain`` spans and
queue-depth / batch-size / latency histograms.  :attr:`stats` keeps an
always-on latency reservoir for p50/p95/p99 reporting regardless of
tracing.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any

import numpy as np

from repro.resilience.policy import RetryPolicy
from repro.serve.batcher import BatchLimits, Flush, MicroBatchPlanner
from repro.serve.errors import ServiceClosed, ServiceOverloaded
from repro.serve.spec import CodecSpec, payload_nbytes
from repro.serve.worker import (
    ERR,
    OK,
    ProcessWorkerConfig,
    Worker,
    _init_process_worker,
    _run_payloads_in_process,
)
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER

#: histogram buckets for batch sizes (requests per flush).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
#: histogram buckets for request latency (seconds).
_LATENCY_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0)


def _span(name: str, **args: Any) -> Any:
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "serve", args)


@dataclass
class ServiceConfig:
    """Knobs of one :class:`ReductionService` instance.

    ``adapter``/``threads`` pick the worker device; ``fault_plan`` (a
    :class:`~repro.resilience.faults.FaultPlan`) wraps every worker
    adapter in a fault injector — the hook the fault-under-load suite
    drives.  ``retry_sleep`` is injectable so tests pay no wall-clock
    for backoff.
    """

    limits: BatchLimits = field(default_factory=BatchLimits)
    max_pending: int = 256
    workers: int = 1
    adapter: str = "serial"
    threads: int | None = None
    cache_capacity: int = 64
    pin_contexts: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    retry_sleep: Any = None
    fault_plan: Any = None
    #: run workers as pool *processes* instead of threads — escapes the
    #: GIL for CPU-bound codec stages.  Each process owns the same stack
    #: a thread worker gets (adapter, retry, serial-fallback degradation,
    #: private CMM cache); batches cross the boundary as pickled
    #: payloads, so process mode trades per-request copy overhead for
    #: true parallel codec execution.
    process: bool = False
    #: consult the tuning cache at startup: ``off`` (never), ``auto`` /
    #: ``force`` (rewrite limits + worker device from the cached
    #: service-level entry before any worker is built — see
    #: :func:`repro.tune.apply_service_tuning`).  A miss, stale schema
    #: or corrupt cache leaves this config exactly as written.
    tune: str = "off"
    #: tuning-cache path (None = the default user cache).  A plain
    #: string so the config pickles into spawned process shards.
    tuning_cache: str | None = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.process and self.retry_sleep is not None:
            raise ValueError(
                "retry_sleep is not injectable across process workers "
                "(callables do not pickle); use thread workers in tests"
            )
        if self.tune not in ("off", "auto", "force"):
            raise ValueError(
                f"tune must be off|auto|force, got {self.tune!r}"
            )


class ServiceStats:
    """Always-on operational counters + latency reservoir."""

    def __init__(self, reservoir: int = 8192) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.cancelled = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.peak_queue_depth = 0
        self._latencies: deque[float] = deque(maxlen=reservoir)

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def latency_percentile(self, pct: float) -> float:
        """Percentile (0..100) over the retained latency reservoir."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        idx = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "peak_queue_depth": self.peak_queue_depth,
            "p50_ms": round(self.latency_percentile(50) * 1e3, 3),
            "p95_ms": round(self.latency_percentile(95) * 1e3, 3),
            "p99_ms": round(self.latency_percentile(99) * 1e3, 3),
        }


@dataclass(slots=True)
class _Request:
    """One admitted request travelling through batcher and worker."""

    op: str
    spec: CodecSpec
    payload: Any
    nbytes: int
    future: asyncio.Future
    submitted_at: float
    key: Any


class ReductionService:
    """Async micro-batching front end over the HPDR codecs.

    Use as an async context manager::

        async with ReductionService(config) as svc:
            blob = await svc.compress(CodecSpec("zfp-x", rate=8), data)
            back = await svc.decompress(CodecSpec("zfp-x", rate=8), blob)
    """

    def __init__(self, config: ServiceConfig | None = None, **overrides) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.stats = ServiceStats()
        self._planner = MicroBatchPlanner(self.config.limits)
        self._workers: list[Worker] = []
        self._executors: list[ThreadPoolExecutor] = []
        self._pool: ProcessPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._timer: asyncio.TimerHandle | None = None
        self._timer_when: float | None = None
        self._idle_check_scheduled = False
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._started = False
        self._closing = False
        self._closed = False
        # Prebound metric counters: the submit/dispatch hot path pays
        # one dict update per event — never a registry lookup, never a
        # label-key sort (label combinations are cached as children).
        self._ctr_requests = _METRICS.counter(
            "hpdr_serve_requests_total", "requests admitted by the service"
        )
        self._ctr_rejected = _METRICS.counter(
            "hpdr_serve_rejected_total", "requests shed by admission control"
        ).child(reason="overload")
        self._ctr_batches = _METRICS.counter(
            "hpdr_serve_batches_total", "batches flushed to workers"
        )
        self._req_children: dict[tuple[str, str], Any] = {}
        self._batch_children: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ReductionService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        if self.config.tune != "off":
            # Consult the tuning cache before any worker exists, so the
            # tuned limits and worker device apply to thread and process
            # workers alike (the pool initializer below reads them from
            # this same config).  Local import: the service must not
            # depend on the tuner unless tuning is requested.
            from repro.tune import apply_service_tuning

            self.config = apply_service_tuning(self.config)
            self._planner = MicroBatchPlanner(self.config.limits)
        cfg = self.config
        if cfg.process:
            # One pool, ``workers`` processes; each builds its own
            # Worker in the initializer (spawn keeps the children free
            # of the parent's event loop and executor threads).
            self._pool = ProcessPoolExecutor(
                max_workers=cfg.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_init_process_worker,
                initargs=(ProcessWorkerConfig(
                    adapter=cfg.adapter,
                    threads=cfg.threads,
                    cache_capacity=cfg.cache_capacity,
                    pin_contexts=cfg.pin_contexts,
                    policy=cfg.retry,
                    fault_plan=cfg.fault_plan,
                ),),
            )
            self._started = True
            return self
        from repro.adapters import get_adapter

        for wid in range(cfg.workers):
            kwargs = {}
            if cfg.adapter == "openmp" and cfg.threads is not None:
                kwargs["num_threads"] = cfg.threads
            adapter = get_adapter(cfg.adapter, **kwargs)
            if cfg.fault_plan is not None:
                from repro.resilience.adapter import FaultyAdapter

                adapter = FaultyAdapter(adapter, cfg.fault_plan)
            worker = Worker(
                wid,
                adapter,
                get_adapter("serial"),
                cache_capacity=cfg.cache_capacity,
                policy=cfg.retry,
                sleep=cfg.retry_sleep,
                pin_contexts=cfg.pin_contexts,
            )
            self._workers.append(worker)
            self._executors.append(
                ThreadPoolExecutor(1, thread_name_prefix=f"hpdr-serve-w{wid}")
            )
        self._started = True
        return self

    async def __aenter__(self) -> "ReductionService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def workers(self) -> list[Worker]:
        return self._workers

    @property
    def inflight(self) -> int:
        return self._inflight

    # -- submission -----------------------------------------------------
    async def submit(self, op: str, spec: CodecSpec, payload) -> Any:
        """Admit one request and await its answer.

        Raises :class:`ServiceOverloaded` when the bounded queue is
        full, :class:`ServiceClosed` after :meth:`close` began, or the
        exception the request's execution ultimately produced.
        Cancelling the awaiting task withdraws the request: if it has
        not been flushed to a worker yet it is dropped entirely.
        """
        if not self._started or self._closed:
            raise ServiceClosed("submit")
        if self._closing:
            raise ServiceClosed("submit")
        if self._inflight >= self.config.max_pending:
            self.stats.rejected += 1
            self._ctr_rejected.inc()
            raise ServiceOverloaded(self._inflight, self.config.max_pending)

        loop = self._loop
        now = loop.time()
        nbytes = payload_nbytes(payload)
        key = spec.batch_key(op, payload)
        req = _Request(
            op=op,
            spec=spec,
            payload=payload,
            nbytes=nbytes,
            future=loop.create_future(),
            submitted_at=now,
            key=key,
        )
        self._inflight += 1
        self._idle.clear()
        self.stats.submitted += 1
        self.stats.peak_queue_depth = max(self.stats.peak_queue_depth,
                                          self._inflight)
        ctr = self._req_children.get((op, spec.name))
        if ctr is None:
            ctr = self._req_children[(op, spec.name)] = \
                self._ctr_requests.child(op=op, codec=spec.name)
        ctr.inc()
        if _TRACER.enabled:
            _METRICS.histogram(
                "hpdr_serve_queue_depth",
                "requests in flight at admission",
                buckets=_BATCH_BUCKETS,
            ).observe(self._inflight)
        flushes = self._planner.add(key, req, nbytes, now)
        for flush in flushes:
            self._dispatch(flush)
        if not flushes and not self._idle_check_scheduled:
            # Idle-flush check, deferred to the end of this event-loop
            # tick so every submission of a same-tick burst lands first
            # (checking at admission would flush the burst's first
            # request alone and desynchronize the rest).
            self._idle_check_scheduled = True
            self._loop.call_soon(self._idle_check)
        self._arm_timer()
        # Accounting lives in this finally instead of a per-future done
        # callback: add_done_callback costs a partial, a Handle and an
        # extra call_soon per request, all on the hot path.
        try:
            return await req.future
        finally:
            self._inflight -= 1
            if req.future.cancelled():
                self.stats.cancelled += 1
                if self._planner.discard(key, req):
                    self._arm_timer()
            if self._inflight == 0:
                self._idle.set()

    async def compress(self, spec: CodecSpec, data: np.ndarray) -> bytes:
        return await self.submit("compress", spec, data)

    async def decompress(self, spec: CodecSpec, blob: bytes) -> np.ndarray:
        return await self.submit("decompress", spec, blob)

    async def retrieve(
        self,
        spec: CodecSpec,
        archive: bytes,
        *,
        eps: float | None = None,
        resolution: int | None = None,
    ) -> np.ndarray:
        """Bounded retrieval from an ``HPGX`` progressive archive."""
        from repro.progressive import make_retrieve_request

        payload = make_retrieve_request(archive, eps=eps, resolution=resolution)
        return await self.submit("retrieve", spec, payload)

    # -- batching machinery ---------------------------------------------
    def _arm_timer(self) -> None:
        deadline = self._planner.next_deadline()
        if deadline == self._timer_when and self._timer is not None:
            return  # earliest deadline unchanged: keep the armed timer
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._timer_when = deadline
        if deadline is not None:
            self._timer = self._loop.call_at(deadline, self._on_deadline)

    def _on_deadline(self) -> None:
        self._timer = None
        self._timer_when = None
        for flush in self._planner.due(self._loop.time()):
            self._dispatch(flush)
        self._arm_timer()

    def _idle_check(self) -> None:
        """Flush every open batch when the system is idle-but-waiting.

        Runs after all submissions scheduled in the same loop tick.  If
        every in-flight request is sitting in an open batch — nothing is
        executing on a worker — then no response is coming, and in
        closed-loop traffic no new request can arrive before one does:
        holding the batches to the deadline would add ``max_latency_s``
        of pure latency per round and collapse throughput (the
        c1_b64-vs-c1_b1 pathology).  Flushing costs nothing we could
        have gained by waiting.
        """
        self._idle_check_scheduled = False
        if self._inflight and self._planner.pending() == self._inflight:
            for flush in self._planner.flush_all(reason="idle"):
                self._dispatch(flush)
            self._arm_timer()

    def _dispatch(self, flush: Flush) -> None:
        """Hand one closed batch to the least-loaded worker."""
        flush.items = [r for r in flush.items if not r.future.done()]
        if not flush.items:
            return
        self.stats.batches += 1
        self.stats.batched_requests += len(flush.items)
        ctr = self._batch_children.get(flush.reason)
        if ctr is None:
            ctr = self._batch_children[flush.reason] = \
                self._ctr_batches.child(reason=flush.reason)
        ctr.inc()
        if _TRACER.enabled:
            _METRICS.histogram(
                "hpdr_serve_batch_size",
                "requests per flushed batch",
                buckets=_BATCH_BUCKETS,
            ).observe(len(flush.items), reason=flush.reason)
            with _span("serve.flush", reason=flush.reason,
                       n=len(flush.items), nbytes=flush.nbytes):
                pass
        if self._pool is not None:
            first = flush.items[0]
            # Payloads cross the pickle boundary; a memoryview (the
            # zero-copy TCP/shm receive path) must be materialized —
            # the process hop copies regardless.
            payloads = [
                bytes(r.payload) if isinstance(r.payload, memoryview)
                else r.payload
                for r in flush.items
            ]
            fut = self._loop.run_in_executor(
                self._pool, _run_payloads_in_process,
                first.op, first.spec, payloads,
            )
            fut.add_done_callback(partial(self._deliver_process, flush.items))
            return
        idx = min(range(len(self._workers)),
                  key=lambda i: self._workers[i].backlog)
        worker = self._workers[idx]
        worker.backlog += 1
        fut = self._loop.run_in_executor(
            self._executors[idx], worker.run_batch, flush
        )
        fut.add_done_callback(partial(self._deliver, worker))

    def _deliver_process(self, items: list, fut: asyncio.Future) -> None:
        """Answer a batch completed by a pool process."""
        try:
            outs = fut.result()
            results = [(r, tag, value) for r, (tag, value) in zip(items, outs)]
        except Exception as exc:  # pool broke or the job failed to pickle
            results = [(r, ERR, exc) for r in items]
        self._answer(results)

    def _deliver(self, worker: Worker, fut: asyncio.Future) -> None:
        """Answer every request of a completed batch (event-loop thread)."""
        worker.backlog -= 1
        try:
            results = fut.result()
        except Exception:  # pragma: no cover - worker.run_batch never raises
            results = []
        self._answer(results)

    def _answer(self, results: list) -> None:
        now = self._loop.time()
        for req, tag, value in results:
            if req.future.done():
                continue  # cancelled mid-execution
            latency = now - req.submitted_at
            self.stats.observe_latency(latency)
            if _TRACER.enabled:
                _METRICS.histogram(
                    "hpdr_serve_latency_seconds",
                    "request latency (admission to answer)",
                    buckets=_LATENCY_BUCKETS,
                ).observe(latency, op=req.op, codec=req.spec.name)
            if tag == OK:
                self.stats.completed += 1
                req.future.set_result(value)
            else:
                self.stats.errors += 1
                req.future.set_exception(value)

    # -- drain / shutdown -----------------------------------------------
    async def drain(self) -> None:
        """Flush every open batch and wait until nothing is in flight."""
        if not self._started:
            return
        for flush in self._planner.flush_all():
            self._dispatch(flush)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
            self._timer_when = None
        if self._inflight:
            await self._idle.wait()

    async def close(self) -> None:
        """Graceful shutdown: stop admission, drain, release workers."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closing = True
        t0 = time.perf_counter()
        await self.drain()
        for executor in self._executors:
            executor.shutdown(wait=True)
        for worker in self._workers:
            worker.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True
        if _TRACER.enabled:
            with _span("serve.drain",
                       answered=self.stats.completed + self.stats.errors,
                       seconds=round(time.perf_counter() - t0, 6)):
                pass
