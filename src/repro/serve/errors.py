"""Typed failure modes of the HPDR-Serve front end.

The service never signals overload or shutdown with a bare exception:
clients distinguish *shed load* (:class:`ServiceOverloaded` — retry
with backoff, the request was never admitted) from *lifecycle*
(:class:`ServiceClosed` — the service is draining, find another
replica) from a genuinely failed request (the original codec exception
is delivered through the request's future untouched).
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class for service-layer failures."""


class ServiceOverloaded(ServeError):
    """Admission control rejected the request (bounded queue full).

    Carries the queue state so clients and load generators can log the
    rejection meaningfully and back off proportionally.  Raised
    *before* the request is enqueued: a rejected request consumed no
    worker time and holds no slot.
    """

    def __init__(self, depth: int, limit: int) -> None:
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"service overloaded: {depth} requests in flight "
            f"(admission limit {limit}); retry with backoff"
        )


class ShardOverloaded(ServiceOverloaded):
    """A cluster shard's admission slice is full (per-shard backpressure).

    Subclasses :class:`ServiceOverloaded` so every existing
    admission-control path — client backoff loops, the blast
    generator's retry, the TCP error framing — handles it unchanged;
    the extra ``shard`` field tells operators *which* hash range is
    saturated (the scale-up signal, see ``docs/operations.md``).

    Defined here rather than in :mod:`repro.cluster` so the transport
    layer can reconstruct it without importing the cluster package.
    """

    def __init__(self, shard: str, depth: int, limit: int) -> None:
        super().__init__(depth, limit)
        self.shard = shard
        self.args = (
            f"shard {shard} overloaded: {depth} requests in flight "
            f"(per-shard limit {limit}); retry with backoff",
        )


class ServiceClosed(ServeError):
    """The service is draining or closed; no new requests are admitted."""

    def __init__(self, what: str = "submit") -> None:
        super().__init__(f"cannot {what}: the service is shut down or draining")


class ProtocolError(ServeError):
    """The peer sent bytes that are not a valid HPDR-Serve frame.

    Also raised for malformed shared-memory payload references (bad
    segment names, out-of-range windows) — everything a misbehaving
    peer can put on the wire maps to this one typed error so transports
    drop the connection instead of crashing the service.
    """
