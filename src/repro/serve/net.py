"""Minimal length-prefixed TCP transport for HPDR-Serve — zero-copy.

Frame layout (little-endian)::

    b"HPDS" | version:u8 | header_len:u32 | payload_len:u64
    header  : UTF-8 JSON (op, spec fields, array dtype/shape or status)
    payload : raw bytes (array data, compressed stream, or empty)

The wire format is deliberately dumb: one JSON header plus one opaque
byte run, so a client in any language can speak it with ``struct`` and
a JSON parser.  Arrays travel as raw C-order bytes described by
``dtype``/``shape`` in the header — the same portable layout the codecs
already guarantee byte-stability for.

The payload path never copies bodies between socket, batcher, and
worker:

* **receive** — each connection owns a :class:`FrameAssembler`, an
  incremental parser over one preallocated ``bytearray``; complete
  frames come back as ``memoryview`` windows into that buffer, and
  array payloads reach the service as ``np.frombuffer`` aliases of the
  same bytes (valid until the next ``feed``, which the sequential
  per-connection discipline guarantees happens only after the
  response);
* **send** — :func:`_encode_payload` returns ``memoryview`` windows
  (``memoryview(arr).cast("B")`` for arrays) and
  :func:`_write_frame` hands them to the transport as-is
  (scatter-gather: no ``tobytes()``/``bytes()`` staging copy);
* **local clients** — an optional shared-memory channel
  (:mod:`repro.serve.shm`) replaces the request body with a
  ``{"name", "offset", "nbytes"}`` header reference into a client-owned
  segment the server maps directly.

Each connection is handled **sequentially** (one request in flight per
connection); concurrency — and therefore micro-batching — comes from
many connections, which is exactly how :mod:`repro.serve.loadgen`
drives load.  Error responses carry the exception's class name so
:class:`BlastClient` re-raises typed service errors
(:class:`~repro.serve.errors.ServiceOverloaded`,
:class:`~repro.serve.errors.ServiceClosed`) on the client side, letting
remote callers run the same backoff logic as in-process ones.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any

import numpy as np

from repro.serve.errors import (
    ProtocolError,
    ServeError,
    ServiceClosed,
    ServiceOverloaded,
    ShardOverloaded,
)
from repro.serve.shm import ShmArena, ShmRegistry
from repro.serve.spec import CodecSpec

_MAGIC = b"HPDS"
_VERSION = 1
_PREAMBLE = struct.Struct("<4sBIQ")

#: refuse headers/payloads beyond these bounds (malformed-stream guard).
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 32

#: socket read size feeding each connection's FrameAssembler.
RECV_CHUNK = 1 << 16


class RemoteRequestError(ServeError):
    """A remote request failed with a non-service exception."""

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        super().__init__(f"remote {kind}: {message}")


class FrameAssembler:
    """Incremental frame parser over one preallocated receive buffer.

    ``feed`` appends socket chunks into a reusable ``bytearray``
    (growing geometrically, compacting consumed bytes in place);
    ``next_frame`` returns ``(header, payload_view)`` where
    ``payload_view`` is a zero-copy ``memoryview`` window into the
    buffer.  A returned view stays valid until the next ``feed`` —
    callers (the sequential connection handler) must finish the frame
    before reading more bytes.  Preamble validation runs as soon as the
    preamble arrives, so an invalid peer is rejected without buffering
    its announced payload.
    """

    def __init__(self, capacity: int = RECV_CHUNK) -> None:
        self._buf = bytearray(max(int(capacity), _PREAMBLE.size))
        self._view = memoryview(self._buf)
        self._start = 0  # read offset of the unparsed region
        self._end = 0    # write offset

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet returned as frames."""
        return self._end - self._start

    def feed(self, data) -> None:
        """Append received bytes (invalidates previously returned views)."""
        n = len(data)
        if self._start == self._end:
            self._start = self._end = 0
        if self._end + n > len(self._buf):
            live = self._end - self._start
            if self._start and live + n <= len(self._buf):
                # Compact consumed bytes away instead of growing (the
                # bytes() staging copy sidesteps overlapping-slice
                # assignment; compaction is rare and small).
                self._buf[:live] = bytes(self._view[self._start:self._end])
            else:
                size = len(self._buf)
                while size < live + n:
                    size *= 2
                new = bytearray(size)
                new[:live] = self._view[self._start:self._end]
                self._view.release()
                self._buf = new
                self._view = memoryview(new)
            self._start, self._end = 0, live
        self._view[self._end : self._end + n] = data
        self._end += n

    def next_frame(self) -> tuple[dict, memoryview] | None:
        """Parse one complete frame, or None until more bytes arrive."""
        if self.pending < _PREAMBLE.size:
            return None
        magic, version, hlen, plen = _PREAMBLE.unpack_from(self._buf, self._start)
        if magic != _MAGIC:
            raise ProtocolError(f"bad magic {bytes(magic)!r} (expected {_MAGIC!r})")
        if version != _VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if hlen > MAX_HEADER_BYTES:
            raise ProtocolError(f"header too large: {hlen} bytes")
        if plen > MAX_PAYLOAD_BYTES:
            raise ProtocolError(f"payload too large: {plen} bytes")
        total = _PREAMBLE.size + hlen + plen
        if self.pending < total:
            return None
        hoff = self._start + _PREAMBLE.size
        try:
            header = json.loads(bytes(self._view[hoff : hoff + hlen]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"unparseable frame header: {exc}") from exc
        if not isinstance(header, dict):
            raise ProtocolError("frame header must be a JSON object")
        payload = self._view[hoff + hlen : hoff + hlen + plen]
        self._start += total
        return header, payload


async def _read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes] | None:
    """Read one frame (client side); None on clean EOF at a boundary."""
    try:
        preamble = await reader.readexactly(_PREAMBLE.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    magic, version, hlen, plen = _PREAMBLE.unpack(preamble)
    if magic != _MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {_MAGIC!r})")
    if version != _VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large: {hlen} bytes")
    if plen > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large: {plen} bytes")
    try:
        raw_header = await reader.readexactly(hlen)
        payload = await reader.readexactly(plen)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header, payload


def _write_frame(writer: asyncio.StreamWriter, header: dict, payload) -> None:
    """Scatter-gather frame write: the payload view goes to the
    transport as-is, with no staging concatenation or ``bytes()`` copy."""
    raw_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    writer.write(_PREAMBLE.pack(_MAGIC, _VERSION, len(raw_header), len(payload)))
    writer.write(raw_header)
    if len(payload):
        writer.write(payload)


def _encode_payload(op: str, payload: Any) -> tuple[dict, Any]:
    """Split a request/response payload into header metadata + a
    zero-copy byte view (the caller keeps ``payload`` alive until the
    view is consumed)."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        view = payload if isinstance(payload, memoryview) else memoryview(payload)
        return {"form": "blob"}, view.cast("B")
    arr = np.ascontiguousarray(payload)
    return (
        {"form": "array", "dtype": arr.dtype.str, "shape": list(arr.shape)},
        memoryview(arr).cast("B"),
    )


def _decode_payload(header: dict, raw, shm: ShmRegistry | None = None) -> Any:
    """Materialize a payload without copying: arrays alias ``raw`` (the
    receive buffer or a mapped shared-memory window)."""
    ref = header.get("shm")
    if ref is not None:
        if shm is None:
            raise ProtocolError("shared-memory payloads not accepted here")
        raw = shm.resolve(ref)
    form = header.get("form")
    if form == "blob":
        return raw
    if form == "array":
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(s) for s in header["shape"])
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    raise ProtocolError(f"unknown payload form {form!r}")


def _raise_remote(header: dict) -> None:
    kind = header.get("kind", "ServeError")
    message = header.get("message", "")
    if kind == "ShardOverloaded":
        raise ShardOverloaded(str(header.get("shard", "?")),
                              int(header.get("depth", 0)),
                              int(header.get("limit", 0)))
    if kind == "ServiceOverloaded":
        raise ServiceOverloaded(int(header.get("depth", 0)),
                                int(header.get("limit", 0)))
    if kind == "ServiceClosed":
        raise ServiceClosed(header.get("what", "submit"))
    raise RemoteRequestError(kind, message)


# ---------------------------------------------------------------------------
async def _handle_connection(service, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    assembler = FrameAssembler()
    shm = ShmRegistry()
    try:
        while True:
            frame = assembler.next_frame()
            if frame is None:
                data = await reader.read(RECV_CHUNK)
                if not data:
                    if assembler.pending:
                        raise ProtocolError("connection closed mid-frame")
                    break
                assembler.feed(data)
                continue
            header, raw = frame
            try:
                op = header["op"]
                if op == "ping":
                    # Liveness probe: answered before spec parsing, so
                    # it costs no codec work and needs no payload (the
                    # cluster health checker's one round-trip).
                    value = b""
                else:
                    spec = CodecSpec(**header["spec"])
                    payload = _decode_payload(header, raw, shm=shm)
                    value = await service.submit(op, spec, payload)
            except asyncio.CancelledError:
                raise
            except ProtocolError:
                raise  # malformed peer: drop the connection, not just the request
            except ServiceOverloaded as exc:
                err = {
                    "status": "err", "kind": type(exc).__name__,
                    "message": str(exc), "depth": exc.depth, "limit": exc.limit,
                }
                shard = getattr(exc, "shard", None)
                if shard is not None:
                    err["shard"] = shard
                _write_frame(writer, err, b"")
            except Exception as exc:
                _write_frame(writer, {
                    "status": "err", "kind": type(exc).__name__,
                    "message": str(exc),
                }, b"")
            else:
                meta, out = _encode_payload(op, value)
                _write_frame(writer, {"status": "ok", **meta}, out)
                del value, out
            # Drop payload references eagerly: a shared-memory window (or
            # an array aliasing it) left bound in this frame would keep
            # the segment's pages pinned past ``shm.close()``.
            del header, raw, frame
            payload = None
            await writer.drain()
    except (ProtocolError, ConnectionResetError):
        pass  # drop the misbehaving/vanished connection
    finally:
        shm.close()
        # Close without awaiting: the transport finishes asynchronously,
        # and awaiting here races loop shutdown (spurious cancellation).
        writer.close()


async def serve_tcp(service, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
    """Expose a started :class:`ReductionService` on a TCP socket.

    Returns the asyncio server; ``server.sockets[0].getsockname()``
    yields the bound address (pass ``port=0`` for an ephemeral port in
    tests).  Close the server *before* closing the service so draining
    covers every admitted request.
    """

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host, port)


class BlastClient:
    """One sequential client connection to a served reduction service.

    With ``use_shm=True`` (local servers only) request bodies travel
    through a client-owned shared-memory arena instead of the socket;
    responses always return inline.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 arena: ShmArena | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self._arena = arena

    @classmethod
    async def connect(cls, host: str, port: int,
                      use_shm: bool = False,
                      shm_bytes: int = 1 << 20) -> "BlastClient":
        reader, writer = await asyncio.open_connection(host, port)
        arena = ShmArena(shm_bytes) if use_shm else None
        return cls(reader, writer, arena)

    async def request(self, op: str, spec: CodecSpec, payload: Any) -> Any:
        meta, raw = _encode_payload(op, payload)
        header = {"op": op, "spec": dataclasses.asdict(spec), **meta}
        if self._arena is not None:
            header["shm"] = self._arena.stage(raw)
            _write_frame(self._writer, header, b"")
        else:
            _write_frame(self._writer, header, raw)
        await self._writer.drain()
        frame = await _read_frame(self._reader)
        if frame is None:
            raise ProtocolError("server closed the connection mid-request")
        resp, out = frame
        if resp.get("status") != "ok":
            _raise_remote(resp)
        return _decode_payload(resp, out)

    async def ping(self) -> None:
        """One liveness round-trip (no spec, no payload, no codec work)."""
        _write_frame(self._writer, {"op": "ping"}, b"")
        await self._writer.drain()
        frame = await _read_frame(self._reader)
        if frame is None:
            raise ProtocolError("server closed the connection mid-request")
        resp, _ = frame
        if resp.get("status") != "ok":
            _raise_remote(resp)

    async def compress(self, spec: CodecSpec, data: np.ndarray) -> bytes:
        return await self.request("compress", spec, data)

    async def decompress(self, spec: CodecSpec, blob: bytes) -> np.ndarray:
        return await self.request("decompress", spec, blob)

    async def retrieve(self, spec: CodecSpec, archive: bytes,
                       eps: float | None = None,
                       resolution: int | None = None) -> np.ndarray:
        """Bounded progressive retrieval of an HPGX archive."""
        from repro.progressive import make_retrieve_request

        return await self.request(
            "retrieve", spec, make_retrieve_request(archive, eps, resolution)
        )

    async def close(self) -> None:
        if self._arena is not None:
            self._arena.close()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
