"""Minimal length-prefixed TCP transport for HPDR-Serve.

Frame layout (little-endian)::

    b"HPDS" | version:u8 | header_len:u32 | payload_len:u64
    header  : UTF-8 JSON (op, spec fields, array dtype/shape or status)
    payload : raw bytes (array data, compressed stream, or empty)

The wire format is deliberately dumb: one JSON header plus one opaque
byte run, so a client in any language can speak it with ``struct`` and
a JSON parser.  Arrays travel as raw C-order bytes described by
``dtype``/``shape`` in the header — the same portable layout the codecs
already guarantee byte-stability for.

Each connection is handled **sequentially** (one request in flight per
connection); concurrency — and therefore micro-batching — comes from
many connections, which is exactly how :mod:`repro.serve.loadgen`
drives load.  Error responses carry the exception's class name so
:class:`BlastClient` re-raises typed service errors
(:class:`~repro.serve.errors.ServiceOverloaded`,
:class:`~repro.serve.errors.ServiceClosed`) on the client side, letting
remote callers run the same backoff logic as in-process ones.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any

import numpy as np

from repro.serve.errors import ServeError, ServiceClosed, ServiceOverloaded
from repro.serve.spec import CodecSpec

_MAGIC = b"HPDS"
_VERSION = 1
_PREAMBLE = struct.Struct("<4sBIQ")

#: refuse headers/payloads beyond these bounds (malformed-stream guard).
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 32


class ProtocolError(ServeError):
    """The peer sent bytes that are not a valid HPDR-Serve frame."""


class RemoteRequestError(ServeError):
    """A remote request failed with a non-service exception."""

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        super().__init__(f"remote {kind}: {message}")


async def _read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes] | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    try:
        preamble = await reader.readexactly(_PREAMBLE.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    magic, version, hlen, plen = _PREAMBLE.unpack(preamble)
    if magic != _MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {_MAGIC!r})")
    if version != _VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large: {hlen} bytes")
    if plen > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large: {plen} bytes")
    try:
        raw_header = await reader.readexactly(hlen)
        payload = await reader.readexactly(plen)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header, payload


def _write_frame(writer: asyncio.StreamWriter, header: dict, payload: bytes) -> None:
    raw_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    writer.write(_PREAMBLE.pack(_MAGIC, _VERSION, len(raw_header), len(payload)))
    writer.write(raw_header)
    writer.write(payload)


def _encode_payload(op: str, payload: Any) -> tuple[dict, bytes]:
    """Split a request/response payload into header metadata + bytes."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return {"form": "blob"}, bytes(payload)
    arr = np.ascontiguousarray(payload)
    return (
        {"form": "array", "dtype": arr.dtype.str, "shape": list(arr.shape)},
        arr.tobytes(),
    )


def _decode_payload(header: dict, raw: bytes) -> Any:
    form = header.get("form")
    if form == "blob":
        return raw
    if form == "array":
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(s) for s in header["shape"])
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    raise ProtocolError(f"unknown payload form {form!r}")


def _raise_remote(header: dict) -> None:
    kind = header.get("kind", "ServeError")
    message = header.get("message", "")
    if kind == "ServiceOverloaded":
        raise ServiceOverloaded(int(header.get("depth", 0)),
                                int(header.get("limit", 0)))
    if kind == "ServiceClosed":
        raise ServiceClosed(header.get("what", "submit"))
    raise RemoteRequestError(kind, message)


# ---------------------------------------------------------------------------
async def _handle_connection(service, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            frame = await _read_frame(reader)
            if frame is None:
                break
            header, raw = frame
            try:
                op = header["op"]
                spec = CodecSpec(**header["spec"])
                payload = _decode_payload(header, raw)
                value = await service.submit(op, spec, payload)
            except asyncio.CancelledError:
                raise
            except ServiceOverloaded as exc:
                _write_frame(writer, {
                    "status": "err", "kind": "ServiceOverloaded",
                    "message": str(exc), "depth": exc.depth, "limit": exc.limit,
                }, b"")
            except Exception as exc:
                _write_frame(writer, {
                    "status": "err", "kind": type(exc).__name__,
                    "message": str(exc),
                }, b"")
            else:
                meta, out = _encode_payload(op, value)
                _write_frame(writer, {"status": "ok", **meta}, out)
            await writer.drain()
    except (ProtocolError, ConnectionResetError):
        pass  # drop the misbehaving/vanished connection
    finally:
        # Close without awaiting: the transport finishes asynchronously,
        # and awaiting here races loop shutdown (spurious cancellation).
        writer.close()


async def serve_tcp(service, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
    """Expose a started :class:`ReductionService` on a TCP socket.

    Returns the asyncio server; ``server.sockets[0].getsockname()``
    yields the bound address (pass ``port=0`` for an ephemeral port in
    tests).  Close the server *before* closing the service so draining
    covers every admitted request.
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host, port)


class BlastClient:
    """One sequential client connection to a served reduction service."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "BlastClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, spec: CodecSpec, payload: Any) -> Any:
        meta, raw = _encode_payload(op, payload)
        header = {"op": op, "spec": dataclasses.asdict(spec), **meta}
        _write_frame(self._writer, header, raw)
        await self._writer.drain()
        frame = await _read_frame(self._reader)
        if frame is None:
            raise ProtocolError("server closed the connection mid-request")
        resp, out = frame
        if resp.get("status") != "ok":
            _raise_remote(resp)
        return _decode_payload(resp, out)

    async def compress(self, spec: CodecSpec, data: np.ndarray) -> bytes:
        return await self.request("compress", spec, data)

    async def decompress(self, spec: CodecSpec, blob: bytes) -> np.ndarray:
        return await self.request("decompress", spec, blob)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
