"""Shared-memory payload channel for local HPDR-Serve clients.

TCP framing moves every request body through the socket once.  For
clients on the same host the payload can skip the socket entirely: the
client stages bytes in a ``multiprocessing.shared_memory`` segment and
sends only a tiny ``{"name", "offset", "nbytes"}`` reference in the
frame header.  The server maps the same physical pages and hands the
codecs a zero-copy view — the body crosses no socket buffer and is
never duplicated between transport, batcher, and worker.

Ownership: the **client** creates and unlinks its staging segment
(:class:`ShmArena`); the **server** only attaches, through a
connection-scoped :class:`ShmRegistry` that validates every reference
before mapping it (a malformed peer gets a typed
:class:`~repro.serve.errors.ProtocolError`, never a crash).  Responses
return inline over TCP — replies are fresh buffers the client will own
anyway, so sharing them would only add lifetime bookkeeping.

Tuning: size the arena to the largest payload (it grows by doubling,
re-creating the segment — a cold-path cost) and keep one arena per
client connection; see ``docs/operations.md``.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.serve.errors import ProtocolError

__all__ = ["ShmArena", "ShmRegistry"]

#: smallest segment an arena allocates (one page of slack over typical
#: metadata keeps tiny payloads from ever forcing a regrow).
MIN_ARENA_BYTES = 1 << 12


def _as_view(payload) -> memoryview:
    """Flat byte view of a payload without copying."""
    if isinstance(payload, memoryview):
        return payload.cast("B")
    if isinstance(payload, (bytes, bytearray)):
        return memoryview(payload)
    arr = np.ascontiguousarray(payload)
    return memoryview(arr).cast("B")


class ShmArena:
    """Client-side staging segment, reused (and grown) across requests.

    One arena supports one in-flight request at a time — exactly the
    sequential-connection discipline of :class:`repro.serve.net.BlastClient`
    — so staging can always start at offset 0 and a request's bytes
    stay valid until its response arrives.
    """

    def __init__(self, nbytes: int = MIN_ARENA_BYTES) -> None:
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(int(nbytes), MIN_ARENA_BYTES)
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def stage(self, payload) -> dict:
        """Copy ``payload`` into the segment; return its wire reference."""
        view = _as_view(payload)
        n = view.nbytes
        if n > self._shm.size:
            # Doubling regrow: new segment, new name (the server's
            # registry attaches to it on first reference).
            size = self._shm.size
            while size < n:
                size *= 2
            self._close_segment()
            self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._shm.buf[:n] = view
        return {"name": self._shm.name, "offset": 0, "nbytes": n}

    def _close_segment(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except (BufferError, FileNotFoundError):  # pragma: no cover
            pass

    def close(self) -> None:
        """Release and unlink the segment (client owns its lifetime)."""
        self._close_segment()


class ShmRegistry:
    """Server-side cache of attached client segments, one per connection.

    Attachments persist for the connection's lifetime so repeated
    requests through the same arena cost one ``mmap`` total; every
    reference is validated **before** mapping — the malformed-peer
    surface of the shared-memory channel.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def resolve(self, ref) -> memoryview:
        """Validate a wire reference and return its zero-copy window."""
        if not isinstance(ref, dict):
            raise ProtocolError(f"shm reference must be an object, got {type(ref).__name__}")
        try:
            name = ref["name"]
            offset = ref["offset"]
            nbytes = ref["nbytes"]
        except KeyError as exc:
            raise ProtocolError(f"shm reference missing field {exc}") from exc
        if not isinstance(name, str) or not name or len(name) > 255 or "/" in name.lstrip("/"):
            raise ProtocolError(f"bad shm segment name {name!r}")
        if not isinstance(offset, int) or not isinstance(nbytes, int) or isinstance(offset, bool) or isinstance(nbytes, bool):
            raise ProtocolError("shm offset/nbytes must be integers")
        if offset < 0 or nbytes < 0:
            raise ProtocolError(f"negative shm window: offset={offset} nbytes={nbytes}")
        seg = self._segments.get(name)
        if seg is None:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, ValueError, OSError) as exc:
                raise ProtocolError(f"unknown shm segment {name!r}") from exc
            self._segments[name] = seg
        if offset + nbytes > seg.size:
            raise ProtocolError(
                f"shm window [{offset}, {offset + nbytes}) exceeds segment "
                f"size {seg.size}"
            )
        return seg.buf[offset : offset + nbytes]

    def close(self) -> None:
        """Detach every cached segment (never unlinks — the client owns
        them)."""
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        self._segments.clear()
