"""Batch execution workers: pinned CMM contexts, retry, degradation.

Each :class:`Worker` owns

* one device adapter (optionally wrapped in a
  :class:`~repro.resilience.adapter.FaultyAdapter` when the service is
  configured with a fault plan — the chaos hook the fault-under-load
  tests use);
* one serial **fallback** adapter, never fault-wrapped: the "most
  compatible processor" requests degrade to when their retry budget is
  exhausted;
* one :class:`~repro.core.context.ContextCache` shared by every codec
  instance the worker builds, so the steady state under load performs
  zero runtime memory management (paper III-B applied to traffic);
* one single-thread executor (owned by the service): a worker's batches
  are serialized, which is what makes sharing its cache and codec
  instances safe without per-call locking.

Execution of one flush:

1. pin the serve context for the batch's ``(codec, dtype,
   shape-class)`` key — the codec objects it holds survive cache
   pressure for the duration of the batch;
2. try the codec's **vectorized batch entry point**
   (``compress_batch``/``decompress_batch``) under the retry policy —
   one launch for the whole batch (this is where micro-batching beats
   single-shot throughput);
3. on any batch-path failure, fall back to per-request execution:
   each request runs under its own
   :func:`~repro.resilience.policy.retry_call`, and a request whose
   budget is exhausted **degrades to the serial fallback codec**
   instead of failing its batch.  Only a request that fails on the
   fallback too is answered with its error — every other request in
   the batch is unaffected.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.context import ContextCache
from repro.resilience.errors import ResilienceExhausted
from repro.resilience.policy import RetryPolicy, retry_call
from repro.serve.batcher import Flush
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER

#: outcome tags a worker attaches to each request of a batch.
OK, ERR = "ok", "err"


def _span(name: str, **args: Any) -> Any:
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "serve", args)


def _apply(codec: Any, op: str, payload: Any) -> Any:
    if op == "compress":
        return codec.compress(payload)
    if op == "retrieve":
        # Progressive bounded retrieval: the payload is a self-contained
        # HPRQ envelope (parameters + HPGX archive), so the codec only
        # contributes its adapter + CMM cache; codecs without either
        # still serve the request on the defaults.
        from repro.progressive import retrieve_request

        return retrieve_request(
            payload,
            adapter=getattr(codec, "adapter", None),
            context_cache=getattr(codec, "cache", None),
        )
    return codec.decompress(payload)


def _apply_batch(codec: Any, op: str, payloads: list[Any]) -> Any:
    """Vectorized batch entry point, or None when the codec lacks one."""
    fn = getattr(codec, f"{op}_batch", None)
    if fn is None:
        return None
    return fn(payloads)


class Worker:
    """Executes flushed batches on one adapter with one CMM cache."""

    def __init__(
        self,
        wid: int,
        adapter,
        fallback_adapter,
        *,
        cache_capacity: int = 64,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = None,
        pin_contexts: bool = True,
    ) -> None:
        self.wid = wid
        self.adapter = adapter
        self.fallback_adapter = fallback_adapter
        self.cache = ContextCache(capacity=cache_capacity)
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep
        self.pin_contexts = pin_contexts
        #: batches currently dispatched to this worker (service-side
        #: least-loaded routing; mutated only from the event loop).
        self.backlog = 0
        self.batches_run = 0
        self.requests_run = 0
        self.degradations = 0

    # ------------------------------------------------------------------
    def run_batch(self, flush: Flush) -> list[tuple[Any, str, Any]]:
        """Execute one flush; return ``(request, tag, value)`` triples.

        Runs on the worker's executor thread.  Never raises: a failure
        is attached to the request(s) it belongs to so the service can
        answer every future individually.
        """
        items = flush.items
        if not items:
            return []
        first = items[0]
        with _span(
            "serve.batch",
            worker=self.wid,
            codec=first.spec.name,
            op=first.op,
            n=len(items),
            nbytes=flush.nbytes,
            reason=flush.reason,
        ):
            outs = self.run_payloads(
                first.op, first.spec, [r.payload for r in items]
            )
        return [(r, tag, value) for r, (tag, value) in zip(items, outs)]

    def run_payloads(self, op: str, spec, payloads: list) -> list[tuple[str, Any]]:
        """Execute one homogeneous batch of payloads; ``(tag, value)``
        per payload, in order.  The request-free core of
        :meth:`run_batch` — also the unit of work shipped to process
        pools, where ``_Request`` objects (holding asyncio futures)
        cannot cross the pickle boundary.
        """
        if not payloads:
            return []
        self.batches_run += 1
        self.requests_run += len(payloads)
        ctx = self.cache.get(
            spec.context_key(op, payloads[0]), pin=self.pin_contexts
        )
        try:
            codec = ctx.object(
                "codec",
                lambda: spec.build(adapter=self.adapter,
                                   context_cache=self.cache),
            )
            if len(payloads) > 1:
                values = self._try_batch_path(codec, op, spec, payloads)
                if values is not None:
                    return [(OK, v) for v in values]
            return [self._run_one(ctx, codec, spec, op, p) for p in payloads]
        finally:
            if self.pin_contexts:
                self.cache.release(ctx)

    # ------------------------------------------------------------------
    def _try_batch_path(self, codec, op: str, spec, payloads) -> list | None:
        """One vectorized launch for the whole batch, under retry.

        Returns None when the codec has no batch entry point or the
        batch path failed (injected fault schedules that outlast the
        retry budget, or a poisoned request) — the caller then degrades
        to per-request execution, which isolates the failure.
        """
        try:
            values = retry_call(
                lambda: _apply_batch(codec, op, payloads),
                self.policy,
                site=f"serve.{spec.name}.batch",
                sleep=self._sleep,
            )
        except Exception:
            return None
        if values is not None and len(values) != len(payloads):
            # A batch entry point that loses answers violates the
            # exactly-once contract; treat as no fast path.
            return None
        return values

    def _run_one(self, ctx, codec, spec, op: str, payload) -> tuple[str, Any]:
        """Per-request execution: retry, then degrade to serial fallback."""
        site = f"serve.{spec.name}"
        try:
            return (OK, retry_call(
                lambda: _apply(codec, op, payload),
                self.policy,
                site=site,
                sleep=self._sleep,
            ))
        except ResilienceExhausted:
            return self._degraded(ctx, spec, op, payload, site)
        except Exception as exc:
            return (ERR, exc)

    def _degraded(self, ctx, spec, op: str, payload, site: str) -> tuple[str, Any]:
        """Serial-fallback execution for one exhausted request.

        Portability makes this loss-free: every HPDR backend produces
        bit-identical streams, so the degraded answer matches what the
        primary device would have produced.
        """
        self.degradations += 1
        _METRICS.counter(
            "hpdr_degradations_total",
            "devices demoted to their fallback adapter",
        ).inc(family="serve")
        with _span("serve.degrade", worker=self.wid, site=site):
            try:
                fallback = ctx.object(
                    "fallback_codec",
                    lambda: spec.build(adapter=self.fallback_adapter,
                                       context_cache=self.cache),
                )
                return (OK, _apply(fallback, op, payload))
            except Exception as exc:
                return (ERR, exc)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release adapter resources (thread pools) and poison the cache."""
        for adapter in (self.adapter, self.fallback_adapter):
            close = getattr(adapter, "close", None)
            if close is not None:
                close()
        self.cache.clear()


# ---------------------------------------------------------------------------
# Process-pool execution (GIL escape for CPU-bound codec stages)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessWorkerConfig:
    """Picklable recipe for one pool process's :class:`Worker`.

    Carried through the pool initializer so every process builds the
    same stack the in-process workers get — adapter, optional fault
    injector, retry policy, degradation fallback, and a private CMM
    cache (processes share nothing, so no locking is ever needed).
    ``retry_sleep`` has no process-mode equivalent: callables do not
    pickle, and backoff in a pool process is real wall-clock anyway.
    """

    adapter: str = "serial"
    threads: int | None = None
    cache_capacity: int = 64
    pin_contexts: bool = True
    policy: RetryPolicy = RetryPolicy()
    fault_plan: Any = None


#: the process-local Worker, created once per pool process.
_PROCESS_WORKER: Worker | None = None


def _init_process_worker(cfg: ProcessWorkerConfig) -> None:
    """Pool initializer: build this process's Worker from the recipe."""
    global _PROCESS_WORKER
    import os

    from repro.adapters import get_adapter

    kwargs = {}
    if cfg.adapter == "openmp" and cfg.threads is not None:
        kwargs["num_threads"] = cfg.threads
    adapter = get_adapter(cfg.adapter, **kwargs)
    if cfg.fault_plan is not None:
        from repro.resilience.adapter import FaultyAdapter

        adapter = FaultyAdapter(adapter, cfg.fault_plan)
    _PROCESS_WORKER = Worker(
        os.getpid(),
        adapter,
        get_adapter("serial"),
        cache_capacity=cfg.cache_capacity,
        policy=cfg.policy,
        pin_contexts=cfg.pin_contexts,
    )


def _run_payloads_in_process(op: str, spec, payloads: list) -> list[tuple[str, Any]]:
    """Pool job: run one batch on the process-local Worker.

    Error values must survive the return pickle; an exception whose
    state does not round-trip is replaced by a ``RuntimeError`` carrying
    its type and message (the request still fails with a useful error
    instead of poisoning the whole pool future).
    """
    outs = _PROCESS_WORKER.run_payloads(op, spec, payloads)
    safe = []
    for tag, value in outs:
        if tag == ERR:
            try:
                pickle.loads(pickle.dumps(value))
            except Exception:
                value = RuntimeError(f"{type(value).__name__}: {value}")
        safe.append((tag, value))
    return safe
