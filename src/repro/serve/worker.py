"""Batch execution workers: pinned CMM contexts, retry, degradation.

Each :class:`Worker` owns

* one device adapter (optionally wrapped in a
  :class:`~repro.resilience.adapter.FaultyAdapter` when the service is
  configured with a fault plan — the chaos hook the fault-under-load
  tests use);
* one serial **fallback** adapter, never fault-wrapped: the "most
  compatible processor" requests degrade to when their retry budget is
  exhausted;
* one :class:`~repro.core.context.ContextCache` shared by every codec
  instance the worker builds, so the steady state under load performs
  zero runtime memory management (paper III-B applied to traffic);
* one single-thread executor (owned by the service): a worker's batches
  are serialized, which is what makes sharing its cache and codec
  instances safe without per-call locking.

Execution of one flush:

1. pin the serve context for the batch's ``(codec, dtype,
   shape-class)`` key — the codec objects it holds survive cache
   pressure for the duration of the batch;
2. try the codec's **vectorized batch entry point**
   (``compress_batch``/``decompress_batch``) under the retry policy —
   one launch for the whole batch (this is where micro-batching beats
   single-shot throughput);
3. on any batch-path failure, fall back to per-request execution:
   each request runs under its own
   :func:`~repro.resilience.policy.retry_call`, and a request whose
   budget is exhausted **degrades to the serial fallback codec**
   instead of failing its batch.  Only a request that fails on the
   fallback too is answered with its error — every other request in
   the batch is unaffected.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.core.context import ContextCache
from repro.resilience.errors import ResilienceExhausted
from repro.resilience.policy import RetryPolicy, retry_call
from repro.serve.batcher import Flush
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER

#: outcome tags a worker attaches to each request of a batch.
OK, ERR = "ok", "err"


def _span(name: str, **args):
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(_TRACER, name, "serve", args)


def _apply(codec, op: str, payload):
    if op == "compress":
        return codec.compress(payload)
    return codec.decompress(payload)


def _apply_batch(codec, op: str, payloads: list):
    """Vectorized batch entry point, or None when the codec lacks one."""
    fn = getattr(codec, f"{op}_batch", None)
    if fn is None:
        return None
    return fn(payloads)


class Worker:
    """Executes flushed batches on one adapter with one CMM cache."""

    def __init__(
        self,
        wid: int,
        adapter,
        fallback_adapter,
        *,
        cache_capacity: int = 64,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = None,
        pin_contexts: bool = True,
    ) -> None:
        self.wid = wid
        self.adapter = adapter
        self.fallback_adapter = fallback_adapter
        self.cache = ContextCache(capacity=cache_capacity)
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep
        self.pin_contexts = pin_contexts
        #: batches currently dispatched to this worker (service-side
        #: least-loaded routing; mutated only from the event loop).
        self.backlog = 0
        self.batches_run = 0
        self.requests_run = 0
        self.degradations = 0

    # ------------------------------------------------------------------
    def run_batch(self, flush: Flush) -> list[tuple[Any, str, Any]]:
        """Execute one flush; return ``(request, tag, value)`` triples.

        Runs on the worker's executor thread.  Never raises: a failure
        is attached to the request(s) it belongs to so the service can
        answer every future individually.
        """
        items = flush.items
        if not items:
            return []
        first = items[0]
        op, spec = first.op, first.spec
        self.batches_run += 1
        self.requests_run += len(items)
        with _span(
            "serve.batch",
            worker=self.wid,
            codec=spec.name,
            op=op,
            n=len(items),
            nbytes=flush.nbytes,
            reason=flush.reason,
        ):
            ctx = self.cache.get(
                spec.context_key(op, first.payload), pin=self.pin_contexts
            )
            try:
                codec = ctx.object(
                    "codec",
                    lambda: spec.build(adapter=self.adapter,
                                       context_cache=self.cache),
                )
                if len(items) > 1:
                    values = self._try_batch_path(codec, op, spec, items)
                    if values is not None:
                        return [(r, OK, v) for r, v in zip(items, values)]
                return [
                    (r,) + self._run_one(ctx, codec, spec, op, r.payload)
                    for r in items
                ]
            finally:
                if self.pin_contexts:
                    self.cache.release(ctx)

    # ------------------------------------------------------------------
    def _try_batch_path(self, codec, op: str, spec, items) -> list | None:
        """One vectorized launch for the whole batch, under retry.

        Returns None when the codec has no batch entry point or the
        batch path failed (injected fault schedules that outlast the
        retry budget, or a poisoned request) — the caller then degrades
        to per-request execution, which isolates the failure.
        """
        payloads = [r.payload for r in items]
        try:
            values = retry_call(
                lambda: _apply_batch(codec, op, payloads),
                self.policy,
                site=f"serve.{spec.name}.batch",
                sleep=self._sleep,
            )
        except Exception:
            return None
        if values is not None and len(values) != len(items):
            # A batch entry point that loses answers violates the
            # exactly-once contract; treat as no fast path.
            return None
        return values

    def _run_one(self, ctx, codec, spec, op: str, payload) -> tuple[str, Any]:
        """Per-request execution: retry, then degrade to serial fallback."""
        site = f"serve.{spec.name}"
        try:
            return (OK, retry_call(
                lambda: _apply(codec, op, payload),
                self.policy,
                site=site,
                sleep=self._sleep,
            ))
        except ResilienceExhausted:
            return self._degraded(ctx, spec, op, payload, site)
        except Exception as exc:
            return (ERR, exc)

    def _degraded(self, ctx, spec, op: str, payload, site: str) -> tuple[str, Any]:
        """Serial-fallback execution for one exhausted request.

        Portability makes this loss-free: every HPDR backend produces
        bit-identical streams, so the degraded answer matches what the
        primary device would have produced.
        """
        self.degradations += 1
        _METRICS.counter(
            "hpdr_degradations_total",
            "devices demoted to their fallback adapter",
        ).inc(family="serve")
        with _span("serve.degrade", worker=self.wid, site=site):
            try:
                fallback = ctx.object(
                    "fallback_codec",
                    lambda: spec.build(adapter=self.fallback_adapter,
                                       context_cache=self.cache),
                )
                return (OK, _apply(fallback, op, payload))
            except Exception as exc:
                return (ERR, exc)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release adapter resources (thread pools) and poison the cache."""
        for adapter in (self.adapter, self.fallback_adapter):
            close = getattr(adapter, "close", None)
            if close is not None:
                close()
        self.cache.clear()
