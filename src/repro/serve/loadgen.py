"""Closed-loop load generation for HPDR-Serve (``repro blast``).

:func:`run_blast` drives N concurrent closed-loop clients against any
object exposing ``request(op, spec, payload)`` — the in-process
:class:`~repro.serve.service.ReductionService` (via a tiny shim) or a
remote :class:`~repro.serve.net.BlastClient` — and reports throughput
plus latency percentiles.  The same harness backs the ``repro blast``
CLI and ``benchmarks/bench_serve.py``, so the committed numbers and the
operator tool measure identically.

Closed-loop means each client issues its next request only after the
previous answer arrives: concurrency equals the client count, and
micro-batching shows up as the service coalescing the simultaneous
in-flight requests of *different* clients.  Admission rejections
(:class:`~repro.serve.errors.ServiceOverloaded`) are counted and
retried after a short backoff — shed load is part of the contract, not
a failure.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Sequence

import numpy as np

from repro.serve.errors import ServiceOverloaded
from repro.serve.spec import CodecSpec


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (0..100) over ``values``; 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


class ServiceClient:
    """In-process adapter giving a ReductionService the client protocol."""

    def __init__(self, service) -> None:
        self._service = service
        # Direct bind: request() IS submit(), without a wrapper
        # coroutine frame per call (this shim sits on the blast hot
        # path, where an extra await costs real throughput).
        self.request = service.submit

    async def close(self) -> None:
        pass  # the service's owner closes it


def default_payloads(specs: Sequence[CodecSpec], shape=(16, 16),
                     seed: int = 7) -> dict[CodecSpec, np.ndarray]:
    """One deterministic float32 array per spec (shared by all clients).

    Sharing one payload per spec keeps every client's requests in the
    same batch key, which is the scenario micro-batching exists for.
    """
    rng = np.random.default_rng(seed)
    out = {}
    for spec in specs:
        data = rng.standard_normal(shape).astype(np.float32)
        if spec.name == "huffman-x":
            data = (data * 4).astype(np.int64).astype(np.float32)
        out[spec] = np.ascontiguousarray(data)
    return out


async def run_blast(
    make_client: Callable[[int], Awaitable],
    *,
    clients: int,
    requests_per_client: int,
    specs: Sequence[CodecSpec],
    payloads: dict[CodecSpec, np.ndarray] | None = None,
    roundtrip: bool = True,
    verify: bool = False,
    overload_backoff_s: float = 0.001,
) -> dict:
    """Run the closed-loop blast; return a metrics dict.

    ``make_client(i)`` builds client ``i`` (its own connection for TCP
    targets).  Each client issues ``requests_per_client`` requests,
    cycling through ``specs``; with ``roundtrip`` each request is a
    compress followed by a decompress of the produced stream (two
    service calls, one latency sample covering both).  ``verify``
    additionally checks the lossless specs' round-trips for exact
    equality and counts mismatches — the load generator doubles as an
    end-to-end correctness probe.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ValueError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    specs = list(specs)
    if not specs:
        raise ValueError("specs must be non-empty")
    payloads = payloads if payloads is not None else default_payloads(specs)
    lossless = {"huffman-x", "lz4"}  # exact round-trip expected

    latencies: list[float] = []
    rejected = 0
    mismatches = 0
    errors = 0

    async def one_client(idx: int) -> None:
        nonlocal rejected, mismatches, errors
        client = await make_client(idx)
        try:
            for i in range(requests_per_client):
                spec = specs[(idx + i) % len(specs)]
                data = payloads[spec]
                t0 = time.perf_counter()
                while True:
                    try:
                        blob = await client.request("compress", spec, data)
                        if roundtrip:
                            back = await client.request(
                                "decompress", spec, blob
                            )
                            if verify:
                                restored = np.asarray(back)
                                if restored.shape != data.shape or (
                                    spec.name in lossless
                                    and not np.array_equal(
                                        restored.astype(data.dtype), data
                                    )
                                ):
                                    mismatches += 1
                        break
                    except ServiceOverloaded:
                        rejected += 1
                        await asyncio.sleep(overload_backoff_s)
                    except Exception:
                        errors += 1
                        break
                latencies.append(time.perf_counter() - t0)
        finally:
            await client.close()

    wall_start = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(clients)))
    wall = time.perf_counter() - wall_start

    completed = len(latencies)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed": completed,
        "rejected": rejected,
        "errors": errors,
        "mismatches": mismatches,
        "wall_s": round(wall, 6),
        "rps": round(completed / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "p95_ms": round(percentile(latencies, 95) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
    }
