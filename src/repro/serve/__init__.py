"""HPDR-Serve: asyncio micro-batching reduction service.

The serving layer turns the HPDR codecs into a concurrent service:
requests are admitted through a bounded queue, grouped by a
deadline-based micro-batcher, and executed on workers whose pinned CMM
contexts keep the steady state zero-alloc under load.  See
``docs/architecture.md`` (serving layer) and ``docs/operations.md``
(``repro serve`` runbook).

>>> import asyncio, numpy as np
>>> from repro.serve import CodecSpec, ReductionService, ServiceConfig
>>> async def demo():
...     async with ReductionService(ServiceConfig()) as svc:
...         spec = CodecSpec("zfp-x", rate=8.0)
...         data = np.ones((16, 16), dtype=np.float32)
...         blob = await svc.compress(spec, data)
...         return (await svc.decompress(spec, blob)).shape
>>> asyncio.run(demo())
(16, 16)
"""

from repro.serve.batcher import BatchLimits, Flush, MicroBatchPlanner
from repro.serve.errors import (
    ServeError,
    ServiceClosed,
    ServiceOverloaded,
    ShardOverloaded,
)
from repro.serve.loadgen import ServiceClient, default_payloads, percentile, run_blast
from repro.serve.net import (
    BlastClient,
    ProtocolError,
    RemoteRequestError,
    serve_tcp,
)
from repro.serve.service import ReductionService, ServiceConfig, ServiceStats
from repro.serve.spec import (
    OPS,
    SERVABLE_CODECS,
    CodecSpec,
    payload_nbytes,
    shape_class,
    size_class,
)
from repro.serve.worker import Worker

__all__ = [
    "BatchLimits",
    "BlastClient",
    "CodecSpec",
    "Flush",
    "MicroBatchPlanner",
    "OPS",
    "ProtocolError",
    "ReductionService",
    "RemoteRequestError",
    "SERVABLE_CODECS",
    "ServeError",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardOverloaded",
    "Worker",
    "default_payloads",
    "payload_nbytes",
    "percentile",
    "run_blast",
    "serve_tcp",
    "shape_class",
    "size_class",
]
