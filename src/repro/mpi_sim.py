"""In-process MPI-style communicator.

The paper's parallel I/O evaluation runs under MPI; this environment has
no ``mpi4py``/``mpiexec``, so this module provides the closest
single-process equivalent: N rank *threads* executing the same program
against a :class:`Communicator` with the familiar surface — ``send`` /
``recv``, ``bcast``, ``scatter``, ``gather``, ``allgather``,
``allreduce``, ``barrier``.  NumPy arrays pass by reference (threads
share memory), so semantics match mpi4py's lowercase generic-object API.

This is a correctness substrate for writing rank-decomposed reduction
programs (see ``examples/mpi_style_reduction.py``), not a performance
model — at-scale timing lives in :mod:`repro.io.parallel`.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence


class Communicator:
    """Per-rank handle into a rank group."""

    def __init__(self, world: "_World", rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- point to point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        self._world.mailbox[(self.rank, dest, tag)].put(obj)

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        try:
            return self._world.mailbox[(source, self.rank, tag)].get(
                timeout=timeout
            )
        except queue.Empty:
            raise TimeoutError(
                f"rank {self.rank} timed out receiving from {source} (tag {tag})"
            ) from None

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        self._world.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        slot = self._world.round_slot()
        if self.rank == root:
            slot["value"] = obj
        self._world.barrier.wait()
        value = slot["value"]
        self._world.barrier.wait()  # all read before the slot recycles
        return value

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        slot = self._world.round_slot()
        slot.setdefault("items", {})[self.rank] = obj
        self._world.barrier.wait()
        out = None
        if self.rank == root:
            items = slot["items"]
            out = [items[r] for r in range(self.size)]
        self._world.barrier.wait()
        return out

    def allgather(self, obj: Any) -> list[Any]:
        slot = self._world.round_slot()
        slot.setdefault("items", {})[self.rank] = obj
        self._world.barrier.wait()
        items = slot["items"]
        out = [items[r] for r in range(self.size)]
        self._world.barrier.wait()
        return out

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        slot = self._world.round_slot()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"root must scatter exactly {self.size} items"
                )
            slot["items"] = list(objs)
        self._world.barrier.wait()
        value = slot["items"][self.rank]
        self._world.barrier.wait()
        return value

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        import operator

        op = op if op is not None else operator.add
        items = self.allgather(obj)
        acc = items[0]
        for x in items[1:]:
            acc = op(acc, x)
        return acc

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = None,
               root: int = 0) -> Any | None:
        import operator

        op = op if op is not None else operator.add
        items = self.gather(obj, root=root)
        if items is None:
            return None
        acc = items[0]
        for x in items[1:]:
            acc = op(acc, x)
        return acc


class _World:
    """Shared state of one rank group."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.mailbox: dict[tuple, queue.Queue] = _DefaultQueues()
        self._round_lock = threading.Lock()
        self._rounds: list[dict] = []
        self._round_users: list[int] = []

    def round_slot(self) -> dict:
        """Slot shared by all ranks of one collective round.

        Each rank's Nth call to a collective must map to the same slot.
        Ranks count their own collective calls; the slot list grows on
        demand.
        """
        me = threading.current_thread()
        idx = getattr(me, "_hpdr_round", 0)
        me._hpdr_round = idx + 1
        with self._round_lock:
            while len(self._rounds) <= idx:
                self._rounds.append({})
            return self._rounds[idx]


class _DefaultQueues(dict):
    def __missing__(self, key):
        with _QUEUE_LOCK:
            if key not in self:
                self[key] = queue.Queue()
            return self[key]


_QUEUE_LOCK = threading.Lock()


def run_ranks(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 60.0,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; return results
    ordered by rank.

    Any rank's exception is re-raised in the caller (after the other
    ranks are released), so failing programs fail loudly.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    world = _World(size)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append((rank, exc))
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.barrier.abort()
            raise TimeoutError("rank program did not finish in time")
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
