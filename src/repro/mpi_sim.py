"""In-process MPI-style communicator.

The paper's parallel I/O evaluation runs under MPI; this environment has
no ``mpi4py``/``mpiexec``, so this module provides the closest
single-process equivalent: N rank *threads* executing the same program
against a :class:`Communicator` with the familiar surface — ``send`` /
``recv``, ``bcast``, ``scatter``, ``gather``, ``allgather``,
``allreduce``, ``barrier``.  NumPy arrays pass by reference (threads
share memory), so semantics match mpi4py's lowercase generic-object API.

This is a correctness substrate for writing rank-decomposed reduction
programs (see ``examples/mpi_style_reduction.py``), not a performance
model — at-scale timing lives in :mod:`repro.io.parallel`.

Fault tolerance (HPDR-Resilience): a rank may *drop out* by raising
:class:`RankDropout`.  Under ``run_ranks(..., tolerate_dropouts=True)``
the survivors keep running — the shared barrier adapts to the shrunken
rank set and collectives operate over the ranks still alive (ULFM-style
shrink semantics).  Without that flag a drop-out fails the program like
any other exception, so existing rank programs are unaffected.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence


class RankDropout(RuntimeError):
    """A rank leaves the computation (device loss, injected fault).

    Raised *by* rank programs (or the fault injector on their behalf).
    Under ``tolerate_dropouts=True`` the remaining ranks continue; the
    dropped rank's slot in the :func:`run_ranks` result holds the
    exception instance.
    """

    def __init__(self, rank: int | None = None, reason: str = "") -> None:
        self.rank = rank
        self.reason = reason
        detail = f"rank {rank}" if rank is not None else "rank"
        super().__init__(
            f"{detail} dropped out" + (f": {reason}" if reason else "")
        )


class _AdaptiveBarrier:
    """Generation barrier over a *shrinkable* set of parties.

    Mirrors ``threading.Barrier`` (``wait``/``abort`` raising
    ``BrokenBarrierError``) but additionally supports :meth:`drop`:
    removing a party releases any waiters its arrival was blocking, so a
    rank dropping out mid-collective cannot deadlock the survivors.
    """

    def __init__(self, parties: int) -> None:
        self._cond = threading.Condition()
        self._active = parties
        self._arrived = 0
        self._generation = 0
        self._aborted = False

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    def wait(self) -> None:
        with self._cond:
            if self._aborted:
                raise threading.BrokenBarrierError
            gen = self._generation
            self._arrived += 1
            if self._arrived >= self._active:
                self._release()
                return
            while gen == self._generation and not self._aborted:
                self._cond.wait()
            if self._aborted:
                raise threading.BrokenBarrierError

    def _release(self) -> None:
        self._arrived = 0
        self._generation += 1
        self._cond.notify_all()

    def drop(self) -> None:
        """Remove one party; release the round if it now completes."""
        with self._cond:
            self._active -= 1
            if self._active > 0 and self._arrived >= self._active:
                self._release()
            elif self._active <= 0:
                self._cond.notify_all()

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


class Communicator:
    """Per-rank handle into a rank group."""

    def __init__(self, world: "_World", rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- membership --------------------------------------------------------
    def active_ranks(self) -> list[int]:
        """Ranks still participating (drop-outs excluded), ascending."""
        return self._world.active_ranks()

    def drop(self, reason: str = "") -> None:
        """Leave the computation by raising :class:`RankDropout`."""
        raise RankDropout(self.rank, reason)

    # -- point to point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        self._world.mailbox[(self.rank, dest, tag)].put(obj)

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        try:
            return self._world.mailbox[(source, self.rank, tag)].get(
                timeout=timeout
            )
        except queue.Empty:
            raise TimeoutError(
                f"rank {self.rank} timed out receiving from {source} (tag {tag})"
            ) from None

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        self._world.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        slot = self._world.round_slot()
        if self.rank == root:
            slot["value"] = obj
        self._world.barrier.wait()
        if "value" not in slot:
            raise RuntimeError(f"bcast root {root} dropped before contributing")
        value = slot["value"]
        self._world.barrier.wait()  # all read before the slot recycles
        return value

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        slot = self._world.round_slot()
        slot.setdefault("items", {})[self.rank] = obj
        self._world.barrier.wait()
        out = None
        if self.rank == root:
            items = slot["items"]
            out = [items[r] for r in sorted(items)]
        self._world.barrier.wait()
        return out

    def allgather(self, obj: Any) -> list[Any]:
        slot = self._world.round_slot()
        slot.setdefault("items", {})[self.rank] = obj
        self._world.barrier.wait()
        items = slot["items"]
        out = [items[r] for r in sorted(items)]
        self._world.barrier.wait()
        return out

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        slot = self._world.round_slot()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"root must scatter exactly {self.size} items"
                )
            slot["items"] = list(objs)
        self._world.barrier.wait()
        if "items" not in slot:
            raise RuntimeError(f"scatter root {root} dropped before contributing")
        value = slot["items"][self.rank]
        self._world.barrier.wait()
        return value

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        import operator

        op = op if op is not None else operator.add
        items = self.allgather(obj)
        acc = items[0]
        for x in items[1:]:
            acc = op(acc, x)
        return acc

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = None,
               root: int = 0) -> Any | None:
        import operator

        op = op if op is not None else operator.add
        items = self.gather(obj, root=root)
        if items is None:
            return None
        acc = items[0]
        for x in items[1:]:
            acc = op(acc, x)
        return acc


class _World:
    """Shared state of one rank group."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = _AdaptiveBarrier(size)
        self.mailbox: dict[tuple, queue.Queue] = _DefaultQueues()
        self._round_lock = threading.Lock()
        self._rounds: list[dict] = []
        self._dropped: set[int] = set()

    def active_ranks(self) -> list[int]:
        with self._round_lock:
            return [r for r in range(self.size) if r not in self._dropped]

    def drop_rank(self, rank: int) -> None:
        """Mark ``rank`` gone and release any collective waiting on it."""
        with self._round_lock:
            if rank in self._dropped:
                return
            self._dropped.add(rank)
        self.barrier.drop()

    def round_slot(self) -> dict:
        """Slot shared by all ranks of one collective round.

        Each rank's Nth call to a collective must map to the same slot.
        Ranks count their own collective calls; the slot list grows on
        demand.
        """
        me = threading.current_thread()
        idx = getattr(me, "_hpdr_round", 0)
        me._hpdr_round = idx + 1
        with self._round_lock:
            while len(self._rounds) <= idx:
                self._rounds.append({})
            return self._rounds[idx]


class _DefaultQueues(dict):
    def __missing__(self, key):
        with _QUEUE_LOCK:
            if key not in self:
                self[key] = queue.Queue()
            return self[key]


_QUEUE_LOCK = threading.Lock()


def run_ranks(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 60.0,
    tolerate_dropouts: bool = False,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; return results
    ordered by rank.

    Any rank's exception is re-raised in the caller (after the other
    ranks are released), so failing programs fail loudly.  With
    ``tolerate_dropouts=True`` a rank raising :class:`RankDropout` is
    removed from the group instead — survivors keep running, and the
    dropped rank's result slot holds the exception instance.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    world = _World(size)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args)
        except RankDropout as exc:
            if tolerate_dropouts:
                if exc.rank is None:
                    exc.rank = rank
                results[rank] = exc
                world.drop_rank(rank)
            else:
                errors.append((rank, exc))
                world.barrier.abort()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append((rank, exc))
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.barrier.abort()
            raise TimeoutError("rank program did not finish in time")
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
