"""Small shared utilities."""

from __future__ import annotations

import functools
import json
import os
import struct


class CorruptStreamError(ValueError):
    """A reduction stream failed to parse (truncated or tampered)."""


def hot_path(fn=None, *, reason: str | None = None):
    """Mark a function/method as a zero-alloc steady-state hot path.

    Purely declarative (no runtime wrapping — the marked function is
    returned unchanged, so decorated kernels cost nothing): the marker
    is what ``scripts/hpdrlint.py`` keys on.  Inside a ``@hot_path``
    body the linter flags per-call allocations (``np.empty`` /
    ``np.zeros`` / ``.astype`` / ``.copy`` …, rule HPL001) and ufunc
    calls missing ``out=`` (rule HPL003); the enclosing module is
    treated as kernel code, where dtype-less array constructors
    (implicit float64, rule HPL002) are also flagged.  Genuine
    exceptions carry an inline ``# hpdrlint: disable=<rule> — why``.

    ``reason`` optionally documents *why* the path is hot (which bench
    pins it); it is surfaced by tooling, not used at runtime.
    """

    def mark(f):
        f.__hpdr_hot_path__ = True
        if reason is not None:
            f.__hpdr_hot_path_reason__ = reason
        return f

    return mark if fn is None else mark(fn)


def atomic_write_bytes(path, data: bytes, fsync: bool = True) -> int:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    A reader (or a process restarted after a mid-write kill) sees either
    the previous complete file or the new complete file, never a torn
    prefix — the invariant campaign manifests and BP index files rely
    on.  The temp file lives in the target directory so the final
    ``os.replace`` stays within one filesystem.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            if fsync:
                f.flush()
                os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        # Persist the rename itself (directory entry); best-effort on
        # platforms where directories cannot be fsynced.
        try:
            dfd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        except OSError:
            return len(data)
        try:
            os.fsync(dfd)
        except OSError:
            pass
        finally:
            os.close(dfd)
    return len(data)


def atomic_write_json(path, obj, fsync: bool = True) -> int:
    """Serialize ``obj`` as JSON and :func:`atomic_write_bytes` it."""
    return atomic_write_bytes(
        path, json.dumps(obj, sort_keys=True).encode("utf-8"), fsync=fsync
    )


def stream_errors(fn):
    """Decorator: low-level parse failures become :class:`CorruptStreamError`.

    Deserializers index, unpack and decode raw bytes; on truncated or
    tampered input those operations raise a zoo of exception types.  A
    library sitting in an I/O path must fail with one predictable error
    class instead.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except CorruptStreamError:
            raise
        except (
            struct.error,
            IndexError,
            KeyError,
            TypeError,
            UnicodeDecodeError,
            OverflowError,
        ) as exc:
            raise CorruptStreamError(f"corrupt stream: {exc}") from exc
        except ValueError as exc:
            raise CorruptStreamError(str(exc)) from exc

    return wrapper
