"""Small shared utilities."""

from __future__ import annotations

import functools
import struct


class CorruptStreamError(ValueError):
    """A reduction stream failed to parse (truncated or tampered)."""


def stream_errors(fn):
    """Decorator: low-level parse failures become :class:`CorruptStreamError`.

    Deserializers index, unpack and decode raw bytes; on truncated or
    tampered input those operations raise a zoo of exception types.  A
    library sitting in an I/O path must fail with one predictable error
    class instead.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except CorruptStreamError:
            raise
        except (
            struct.error,
            IndexError,
            KeyError,
            TypeError,
            UnicodeDecodeError,
            OverflowError,
        ) as exc:
            raise CorruptStreamError(f"corrupt stream: {exc}") from exc
        except ValueError as exc:
            raise CorruptStreamError(str(exc)) from exc

    return wrapper
