"""Command-line interface: ``python -m repro <command>``.

Operates on ``.npy`` arrays so any NumPy-producing workflow can use HPDR
from the shell:

.. code-block:: bash

    python -m repro compress field.npy field.hpdr --method mgard-x --eb 1e-3
    python -m repro decompress field.hpdr restored.npy
    python -m repro info field.hpdr
    python -m repro refactor field.npy field.mgrf --precision 1e-6
    python -m repro retrieve field.mgrf coarse.npy --levels 2
    python -m repro faultplan plan.json --system frontier --nodes 1024
    python -m repro campaign field.npy out/ --ranks 8 --faults plan.json
    python -m repro campaign field.npy out/ --ranks 8 --resume
    python -m repro cluster --shards 4 --replicas 1 --backend process
    python -m repro blast --cluster --shards 4 --codec mixed --kill-one --verify
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import struct
import sys

import numpy as np

_ENVELOPE_MAGIC = b"HPDR"


def _envelope(method: str, payload: bytes) -> bytes:
    m = method.encode("ascii")
    return _ENVELOPE_MAGIC + struct.pack("<B", len(m)) + m + payload


def _open_envelope(blob: bytes) -> tuple[str, bytes]:
    if blob[:4] != _ENVELOPE_MAGIC:
        raise ValueError("not an HPDR container (bad magic)")
    (mlen,) = struct.unpack_from("<B", blob, 4)
    method = blob[5 : 5 + mlen].decode("ascii")
    return method, blob[5 + mlen :]


def _tuned_config(args, method: str, data):
    """Resolve ``--tune`` into a knob configuration (None when off).

    An explicit ``--adapter`` beats the tuner — the operator asked for
    that device, and the tuned entry may have been learned on another.
    """
    mode = getattr(args, "tune", "off") or "off"
    if mode == "off" or getattr(args, "adapter", None):
        return None
    from repro.tune import TuningCache, resolve_codec_config

    cache = TuningCache(getattr(args, "tuning_cache", None))
    return resolve_codec_config(mode, method, data, cache=cache)


def _tuned_adapter(config):
    """Device adapter a resolved tuning configuration names."""
    from repro import get_adapter

    kwargs = {}
    if config.get("adapter") == "openmp" and config.get("threads"):
        kwargs["num_threads"] = int(config["threads"])
    return get_adapter(config.get("adapter", "serial"), **kwargs)


def _build_compressor(method: str, args, adapter=None, tuned=None):
    """Build the compressor ``args`` describe.

    ``adapter`` overrides the CLI-selected device adapter — the campaign
    runner uses this to hand each rank its own resilient adapter chain
    while reusing all method/bound plumbing.  ``tuned`` (a resolved
    tuning configuration) picks the device when neither ``adapter`` nor
    ``--adapter`` did.
    """
    from repro import Config, ErrorMode, LZ4, MGARDX, SZ, ZFPX, get_adapter
    from repro import rate_for_error_bound

    sanitize = bool(getattr(args, "sanitize", False))
    if adapter is not None:
        sanitize = False  # explicit override wins; no sanitizer re-wrap
    elif tuned is not None and not sanitize:
        adapter = _tuned_adapter(tuned)
    elif getattr(args, "adapter", None):
        kwargs = {}
        threads = getattr(args, "threads", None)
        if threads is not None:
            if args.adapter != "openmp":
                raise SystemExit("--threads only applies to --adapter openmp")
            kwargs["num_threads"] = threads
        adapter = get_adapter(args.adapter, **kwargs)
    elif sanitize:
        adapter = get_adapter("serial")
    if sanitize:
        from repro.check import SANITIZABLE_FAMILIES, SanitizingAdapter

        if adapter.family not in SANITIZABLE_FAMILIES:
            raise SystemExit(
                f"--sanitize supports {'/'.join(SANITIZABLE_FAMILIES)} "
                f"adapters, not {adapter.family!r}"
            )
        if not isinstance(adapter, SanitizingAdapter):
            adapter = SanitizingAdapter(adapter)
    mode = ErrorMode.ABS if getattr(args, "mode", "rel") == "abs" else ErrorMode.REL
    eb = getattr(args, "eb", 1e-3)
    cfg = Config(error_bound=eb, error_mode=mode)
    if method == "mgard-x":
        return MGARDX(cfg, adapter=adapter)
    if method == "sz":
        return SZ(cfg, adapter=adapter)
    if method == "zfp-x":
        rate = getattr(args, "rate", None)
        if rate is None:
            rate = 16.0
        return ZFPX(rate=rate, adapter=adapter)
    if method == "zfp-accuracy":
        from repro import ZFPAccuracy

        return ZFPAccuracy(tolerance=getattr(args, "tolerance", 1e-3) or 1e-3)
    if method == "huffman-x":
        from repro import HuffmanX

        return HuffmanX(adapter=adapter)
    if method == "lz4":
        return LZ4()
    raise SystemExit(f"unknown method {method!r}")


def _trace_begin(args) -> bool:
    """Enable tracing when ``--trace``/``--metrics`` was requested."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", False)):
        return False
    import repro.trace as trace

    trace.enable(clear=True)
    return True


def _trace_end(args, tracing: bool) -> None:
    """Export/print the requested observability artifacts."""
    if not tracing:
        return
    import repro.trace as trace

    out = getattr(args, "trace", None)
    if out:
        path = trace.export_chrome(out)
        print(f"trace: {len(trace.events())} spans -> {path} "
              f"(load in chrome://tracing or Perfetto)")
    if getattr(args, "metrics", False):
        print(trace.summary())


def cmd_compress(args) -> int:
    data = np.load(args.input)
    tuned = _tuned_config(args, args.method, data)
    comp = _build_compressor(args.method, args, tuned=tuned)
    tracing = _trace_begin(args)
    payload = comp.compress(data)
    blob = _envelope(args.method, payload)
    from repro.util import atomic_write_bytes

    atomic_write_bytes(args.output, blob)
    print(
        f"{args.input}: {data.nbytes/1e6:.2f} MB -> {len(blob)/1e6:.2f} MB "
        f"({data.nbytes/len(blob):.2f}x) via {args.method}"
    )
    if tuned is not None:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(tuned.items()))
        print(f"tuned ({args.tune}): {knobs}")
    _trace_end(args, tracing)
    return 0


def cmd_decompress(args) -> int:
    with open(args.input, "rb") as f:
        blob = f.read()
    method, payload = _open_envelope(blob)
    comp = _build_compressor(method, args)
    tracing = _trace_begin(args)
    data = comp.decompress(payload)
    np.save(args.output, np.asarray(data))
    print(f"{args.input} ({method}) -> {args.output} "
          f"{np.asarray(data).shape} {np.asarray(data).dtype}")
    _trace_end(args, tracing)
    return 0


def cmd_info(args) -> int:
    with open(args.input, "rb") as f:
        blob = f.read()
    method, payload = _open_envelope(blob)
    print(f"container: HPDR envelope, method={method}, "
          f"payload={len(payload)} bytes")
    return 0


def cmd_refactor(args) -> int:
    if getattr(args, "progressive", False):
        return _refactor_progressive(args)
    from repro.compressors.mgard.refactor import MGARDRefactor

    data = np.load(args.input)
    r = MGARDRefactor(precision=args.precision)
    refactored = r.refactor(data)
    from repro.util import atomic_write_bytes

    atomic_write_bytes(args.output, refactored.tobytes())
    print(f"{args.input}: {data.nbytes/1e6:.2f} MB -> "
          f"{refactored.total_bytes/1e6:.2f} MB in "
          f"{refactored.num_levels} substreams")
    for k in range(1, refactored.num_levels + 1):
        print(f"  prefix {k}: {refactored.prefix_bytes(k)/1e6:8.3f} MB, "
              f"est. error {refactored.error_estimate(k):.3e}")
    return 0


def _refactor_progressive(args) -> int:
    """``refactor --progressive``: write an HPGX archive or BP store."""
    from repro import Config, ErrorMode
    from repro.progressive import ProgressiveMGARD, archive_bytes, write_store

    data = np.load(args.input)
    tuned = _tuned_config(args, "mgard-x", data)
    mode = ErrorMode.ABS if args.mode == "abs" else ErrorMode.REL
    codec = ProgressiveMGARD(
        Config(error_bound=args.eb, error_mode=mode),
        adapter=_tuned_adapter(tuned) if tuned is not None else None,
        bits_per_plane=args.bits_per_plane,
        max_planes=args.max_planes,
    )
    if tuned is not None:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(tuned.items()))
        print(f"tuned ({args.tune}): {knobs}")
    tracing = _trace_begin(args)
    index, segments = codec.refactor(data)
    if args.store == "bp":
        write_store(args.output, index, segments,
                    num_aggregators=args.aggregators)
        where = f"BP store {args.output} ({args.aggregators} aggregators)"
    else:
        from repro.util import atomic_write_bytes

        atomic_write_bytes(args.output, archive_bytes(index, segments))
        where = f"HPGX archive {args.output}"
    print(f"{args.input}: {data.nbytes} B -> {index.total_bytes} B "
          f"segment stream in {len(index.records)} segments "
          f"({index.ngroups} groups) -> {where}")
    print(f"  abs bound {index.abs_eb:.6e}, floor {index.floor:.6e}")
    print("  retrievable frontier (cumulative bytes -> achieved error):")
    for rec in index.frontier():
        prefix = sum(r.nbytes for r in index.records[: rec.seq + 1])
        print(f"    seg {rec.seq:3d} (group {rec.group}): "
              f"{prefix:8d} B -> {rec.error_bound:.6e}")
    _trace_end(args, tracing)
    return 0


def cmd_retrieve(args) -> int:
    from pathlib import Path

    src = Path(args.input)
    if src.is_dir():
        return _retrieve_progressive(args)
    with open(args.input, "rb") as f:
        head = f.read(4)
    from repro.progressive import ARCHIVE_MAGIC

    if head == ARCHIVE_MAGIC:
        return _retrieve_progressive(args)
    if args.error_bound is not None or args.resolution is not None:
        raise SystemExit(
            "--error-bound/--resolution need a progressive source "
            "(HPGX archive or BP store); this input is a legacy "
            "refactored stream — use --levels"
        )
    from repro.compressors.mgard.refactor import MGARDRefactor, RefactoredData

    with open(args.input, "rb") as f:
        refactored = RefactoredData.frombytes(f.read())
    r = MGARDRefactor()
    data = r.retrieve(refactored, num_levels=args.levels)
    np.save(args.output, data)
    touched = refactored.prefix_bytes(args.levels or refactored.num_levels)
    print(f"retrieved {data.shape} from {touched/1e6:.3f} MB "
          f"of {refactored.total_bytes/1e6:.3f} MB")
    return 0


def _retrieve_progressive(args) -> int:
    """Bounded retrieval from an HPGX archive / BP store."""
    from repro.progressive import BoundUnreachableError, ProgressiveRetriever

    if args.levels is not None:
        raise SystemExit("--levels is for legacy streams; progressive "
                         "sources take --error-bound or --resolution")
    tracing = _trace_begin(args)
    retriever = ProgressiveRetriever()
    try:
        data, report = retriever.retrieve(
            args.input, eps=args.error_bound, resolution=args.resolution
        )
    except BoundUnreachableError as exc:
        raise SystemExit(f"retrieve: {exc}")
    np.save(args.output, data)
    want = (f"eps={report.eps:g}" if report.eps is not None
            else f"resolution={report.resolution}"
            if report.resolution is not None else "full prefix")
    print(f"retrieved {data.shape} {data.dtype} ({want}) from "
          f"{report.source}: {report.segments_fetched}/"
          f"{report.total_segments} segments, {report.bytes_fetched}/"
          f"{report.total_bytes} B ({report.fraction_fetched:.1%}), "
          f"achieved error {report.error_bound:.6e}")
    _trace_end(args, tracing)
    return 0


def cmd_campaign(args) -> int:
    """Fault-tolerant chunked campaign with checkpoint/restart."""
    from repro.resilience import CampaignKilled, CampaignRunner, FaultPlan

    data = np.load(args.input)
    plan = FaultPlan.load(args.faults) if args.faults else None
    tracing = _trace_begin(args)
    runner = CampaignRunner(
        data,
        args.outdir,
        make_compressor=lambda ad: _build_compressor(args.method, args, adapter=ad),
        method=args.method,
        ranks=args.ranks,
        chunk_elems=args.chunk_elems,
        adapter_family=args.adapter or "serial",
        plan=plan,
        checkpoint_every=args.checkpoint_every,
    )
    try:
        result = runner.run(resume=args.resume)
    except CampaignKilled as exc:
        print(f"campaign killed: {exc.completed_chunks} chunks checkpointed "
              f"in {args.outdir}; rerun with --resume to continue")
        _trace_end(args, tracing)
        return 3
    print(
        f"{args.input}: {result.total_chunks} chunks on {args.ranks} ranks "
        f"({result.resumed_chunks} resumed, "
        f"{len(result.dropped_ranks)} ranks dropped, "
        f"{result.faults_injected} faults, {result.retries} retries)"
    )
    print(f"output: {result.output_path}  sha256={result.output_digest[:16]}…")
    _trace_end(args, tracing)
    return 0


def cmd_faultplan(args) -> int:
    """Generate a fault-plan JSON, from rates or from a system's MTBF."""
    from repro.resilience import FaultPlan, plan_for_system

    if args.system:
        from repro.machine.topology import get_system

        plan = plan_for_system(
            get_system(args.system), args.nodes, args.hours, seed=args.seed
        )
    else:
        plan = FaultPlan(
            seed=args.seed,
            device_batch_rate=args.device_batch_rate,
            timeout_rate=args.timeout_rate,
            corrupt_rate=args.corrupt_rate,
            transport_rate=args.transport_rate,
            drop_ranks=tuple(args.drop_rank or ()),
            drop_after_chunks=args.drop_after_chunks,
            kill_after_chunks=args.kill_after_chunks,
        )
    plan.save(args.output)
    rates = ", ".join(
        f"{k}={plan.rate(k):g}"
        for k in ("device_batch", "timeout", "corrupt", "transport")
    )
    print(f"{args.output}: seed={plan.seed}, {rates}, "
          f"drop_ranks={list(plan.drop_ranks)}, "
          f"kill_after={plan.kill_after_chunks}")
    return 0


def cmd_serve(args) -> int:
    """Run the HPDR-Serve micro-batching service on a TCP socket."""
    import asyncio
    import signal

    from repro.serve import BatchLimits, ReductionService, ServiceConfig, serve_tcp

    tracing = _trace_begin(args)
    cfg = ServiceConfig(
        limits=BatchLimits(
            max_batch=args.max_batch,
            max_bytes=args.max_bytes,
            max_latency_s=args.max_latency_ms / 1e3,
        ),
        max_pending=args.max_pending,
        workers=args.processes if args.processes else args.workers,
        adapter=args.adapter or "serial",
        threads=args.threads,
        process=bool(args.processes),
        tune=args.tune,
        tuning_cache=args.tuning_cache,
    )

    async def run() -> dict:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, stop.set)
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
        async with ReductionService(cfg) as svc:
            tuned_cfg = svc.config
            if tuned_cfg is not cfg:
                print(f"tuned ({cfg.tune}): adapter={tuned_cfg.adapter} "
                      f"max_batch={tuned_cfg.limits.max_batch} "
                      f"deadline={tuned_cfg.limits.max_latency_s * 1e3:g}ms",
                      flush=True)
            server = await serve_tcp(svc, args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(
                f"serving on {host}:{port} adapter={cfg.adapter} "
                f"workers={cfg.workers}"
                f"{' (processes)' if cfg.process else ''} "
                f"max_batch={cfg.limits.max_batch} "
                f"deadline={cfg.limits.max_latency_s * 1e3:g}ms "
                f"max_pending={cfg.max_pending}; Ctrl-C drains and exits",
                flush=True,
            )
            await stop.wait()
            print("draining…", flush=True)
            server.close()
            await server.wait_closed()
        return svc.stats.snapshot()

    snapshot = asyncio.run(run())
    print("drained: " + " ".join(f"{k}={v}" for k, v in snapshot.items()))
    _trace_end(args, tracing)
    return 0


def cmd_cluster(args) -> int:
    """Run the sharded cluster behind its consistent-hash router (TCP)."""
    import asyncio
    import signal

    from repro.cluster import ClusterConfig, ClusterService
    from repro.serve import BatchLimits, ServiceConfig, serve_tcp

    tracing = _trace_begin(args)
    cfg = ClusterConfig(
        shards=args.shards,
        replicas=args.replicas,
        backend=args.backend,
        service=ServiceConfig(
            limits=BatchLimits(
                max_batch=args.max_batch,
                max_latency_s=args.max_latency_ms / 1e3,
            ),
            max_pending=args.max_pending,
            workers=args.workers,
            adapter=args.adapter or "serial",
            threads=args.threads,
            tune=args.tune,
            tuning_cache=args.tuning_cache,
        ),
        shard_max_pending=args.shard_max_pending,
        vnodes=args.vnodes,
    )

    async def run() -> dict:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, stop.set)
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
        async with ClusterService(cfg) as cluster:
            server = await serve_tcp(cluster, args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(
                f"cluster on {host}:{port} shards={cfg.shards} "
                f"replicas={cfg.replicas} backend={cfg.backend} "
                f"per-shard-limit={cfg.per_shard_limit}; "
                f"Ctrl-C drains and exits",
                flush=True,
            )
            await stop.wait()
            print("draining…", flush=True)
            server.close()
            await server.wait_closed()
        return cluster.stats.snapshot()

    snapshot = asyncio.run(run())
    per_shard = snapshot.pop("per_shard", {})
    print("drained: " + " ".join(f"{k}={v}" for k, v in snapshot.items()))
    if per_shard:
        print("per-shard: "
              + " ".join(f"{k}={v}" for k, v in sorted(per_shard.items())))
    _trace_end(args, tracing)
    return 0


def cmd_blast(args) -> int:
    """Closed-loop load generator against a served reduction service."""
    import asyncio
    import contextlib

    from repro.serve import (
        BatchLimits,
        BlastClient,
        CodecSpec,
        ReductionService,
        ServiceConfig,
        default_payloads,
        run_blast,
        serve_tcp,
    )

    if not (args.selfhost or args.cluster) and args.port is None:
        raise SystemExit("--port is required (or use --selfhost/--cluster)")
    if args.kill_one and not args.cluster:
        raise SystemExit("--kill-one requires --cluster (the failover drill)")
    if args.codec == "mixed":
        from repro.cluster import mixed_specs

        specs = mixed_specs()
    else:
        specs = [CodecSpec(args.codec, error_bound=args.eb, rate=args.rate)]
    try:
        shape = tuple(int(s) for s in args.shape.split("x"))
    except ValueError:
        raise SystemExit(f"--shape must look like 16x16, got {args.shape!r}")
    payloads = default_payloads(specs, shape=shape, seed=args.seed)

    async def run() -> dict:
        server = None
        svc = None
        cluster = None
        kill_task = None
        host, port = args.host, args.port
        if args.cluster:
            from repro.cluster import ClusterConfig, ClusterService

            cluster_cfg = ClusterConfig(
                shards=args.shards,
                replicas=args.replicas,
                backend=args.backend,
                service=ServiceConfig(
                    limits=BatchLimits(
                        max_batch=args.max_batch,
                        max_latency_s=args.max_latency_ms / 1e3,
                    ),
                    workers=args.workers,
                    adapter=args.adapter or "serial",
                    threads=args.threads,
                    tune=args.tune,
                    tuning_cache=args.tuning_cache,
                ),
                shard_max_pending=args.shard_max_pending,
            )
            svc = cluster = await ClusterService(cluster_cfg).start()
            server = await serve_tcp(svc, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
        elif args.selfhost:
            cfg = ServiceConfig(
                limits=BatchLimits(
                    max_batch=args.max_batch,
                    max_latency_s=args.max_latency_ms / 1e3,
                ),
                workers=args.processes if args.processes else args.workers,
                adapter=args.adapter or "serial",
                threads=args.threads,
                process=bool(args.processes),
                tune=args.tune,
                tuning_cache=args.tuning_cache,
            )
            svc = await ReductionService(cfg).start()
            server = await serve_tcp(svc, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
        if args.kill_one and cluster is not None:
            # The drill targets the shard that actually owns the first
            # spec's traffic, so the kill always hits live requests.
            target = cluster.owner("compress", specs[0], payloads[specs[0]])

            async def killer() -> None:
                await asyncio.sleep(args.kill_after_ms / 1e3)
                print(f"killing shard {target} mid-run", flush=True)
                cluster.kill_shard(target)

            kill_task = asyncio.get_running_loop().create_task(killer())
        try:
            report = await run_blast(
                lambda i: BlastClient.connect(host, port, use_shm=args.shm),
                clients=args.clients,
                requests_per_client=args.requests,
                specs=specs,
                payloads=payloads,
                roundtrip=not args.compress_only,
                verify=args.verify,
            )
        finally:
            if kill_task is not None:
                kill_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await kill_task
            if server is not None:
                server.close()
                await server.wait_closed()
            if svc is not None:
                await svc.close()
        if cluster is not None:
            snap = cluster.stats.snapshot()
            report["failovers"] = snap["failovers"]
            report["adoptions"] = snap["adoptions"]
            report["per_shard"] = snap["per_shard"]
        return report

    report = asyncio.run(run())
    print(
        f"{report['completed']} requests ({args.codec}, "
        f"{args.clients} clients): {report['rps']:.0f} req/s  "
        f"p50={report['p50_ms']:.2f}ms p95={report['p95_ms']:.2f}ms "
        f"p99={report['p99_ms']:.2f}ms  rejected={report['rejected']} "
        f"errors={report['errors']} mismatches={report['mismatches']}"
    )
    if "per_shard" in report:
        shares = " ".join(
            f"{k}={v}" for k, v in sorted(report["per_shard"].items())
        )
        print(f"cluster: failovers={report['failovers']} "
              f"adoptions={report['adoptions']}  {shares}")
    return 1 if (report["errors"] or report["mismatches"]) else 0


def cmd_tune(args) -> int:
    """Run the tuning campaign over the synthetic-dataset matrix."""
    from repro.tune import TuningCache, tune_matrix, tune_service

    cache = TuningCache(args.tuning_cache)
    print(f"tuning cache: {cache.path}")
    tracing = _trace_begin(args)
    reports = tune_matrix(
        cache,
        quick=args.quick,
        seed=args.seed,
        budget=args.budget,
        progress=lambda line: print(f"  {line}", flush=True),
    )
    if args.serve:
        report = tune_service(
            cache,
            seed=args.seed,
            budget=args.budget,
            clients=args.clients,
        )
        print(f"  service: {report.speedup:.2f}x "
              f"({report.evaluations} evals, "
              f"{report.rejected} rejected by the byte guard)")
        reports[str(report.key)] = report
    print(f"\nlearned table ({len(reports)} keys tuned this run):")
    print(cache.table())
    improved = sum(1 for r in reports.values() if r.improved)
    print(f"\n{improved}/{len(reports)} keys beat the hand-tuned defaults; "
          f"every persisted config is byte-identical to them")
    _trace_end(args, tracing)
    return 0


def cmd_datasets(_args) -> int:
    from repro.data.registry import DATASETS

    print(f"{'name':<6} {'field':<8} {'paper dims':<24} {'dtype':<8} size")
    for spec in DATASETS.values():
        dims = "x".join(map(str, spec.full_shape))
        print(f"{spec.name:<6} {spec.field:<8} {dims:<24} "
              f"{spec.dtype:<8} {spec.full_size_label}")
    return 0


def _add_tune_flags(sp, what: str) -> None:
    """``--tune``/``--tuning-cache`` on every tuning-aware command."""
    sp.add_argument("--tune", default="off", choices=["auto", "off", "force"],
                    help=f"consult the tuning cache for {what}: auto uses a "
                         f"cached entry, force re-tunes first, off (default) "
                         f"uses hand-tuned defaults; tuned runs are "
                         f"byte-identical to defaults")
    sp.add_argument("--tuning-cache", default=None, metavar="PATH",
                    help="tuning-cache file (default: $HPDR_TUNE_CACHE or "
                         "~/.cache/hpdr/tuning.json)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="HPDR portable scientific data reduction",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a .npy array")
    c.add_argument("input")
    c.add_argument("output")
    c.add_argument("--method", default="mgard-x",
                   choices=["mgard-x", "zfp-x", "zfp-accuracy", "sz",
                            "huffman-x", "lz4"])
    c.add_argument("--eb", type=float, default=1e-3,
                   help="error bound (lossy methods)")
    c.add_argument("--mode", default="rel", choices=["rel", "abs"])
    c.add_argument("--rate", type=float, default=None,
                   help="bits/value (zfp-x)")
    c.add_argument("--tolerance", type=float, default=None,
                   help="absolute tolerance (zfp-accuracy)")
    c.add_argument("--adapter", default=None,
                   choices=["serial", "openmp", "cuda", "hip"])
    c.add_argument("--threads", type=int, default=None,
                   help="worker threads (openmp adapter)")
    c.add_argument("--sanitize", action="store_true",
                   help="run under the HPDR-San shadow sanitizer "
                        "(serial/openmp; slower, catches races and "
                        "context misuse)")
    c.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record spans and write Chrome trace-event JSON "
                        "(chrome://tracing / Perfetto)")
    c.add_argument("--metrics", action="store_true",
                   help="print the stage/metrics summary after the run")
    _add_tune_flags(c, "this codec/dtype/shape")
    c.set_defaults(func=cmd_compress)

    d = sub.add_parser("decompress", help="decompress an .hpdr container")
    d.add_argument("input")
    d.add_argument("output")
    d.add_argument("--adapter", default=None,
                   choices=["serial", "openmp", "cuda", "hip"])
    d.add_argument("--threads", type=int, default=None,
                   help="worker threads (openmp adapter)")
    d.add_argument("--sanitize", action="store_true",
                   help="run under the HPDR-San shadow sanitizer")
    d.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record spans and write Chrome trace-event JSON")
    d.add_argument("--metrics", action="store_true",
                   help="print the stage/metrics summary after the run")
    d.set_defaults(func=cmd_decompress, eb=1e-3, mode="rel", rate=None, tolerance=None)

    i = sub.add_parser("info", help="describe an .hpdr container")
    i.add_argument("input")
    i.set_defaults(func=cmd_info)

    r = sub.add_parser("refactor", help="refactor into progressive substreams")
    r.add_argument("input")
    r.add_argument("output")
    r.add_argument("--precision", type=float, default=1e-6,
                   help="(legacy stream) substream precision")
    r.add_argument("--progressive", action="store_true",
                   help="emit the segmented HPGX/BP form with a per-segment "
                        "error-bound index (repro.progressive)")
    r.add_argument("--eb", type=float, default=1e-3,
                   help="(--progressive) error bound of the full stream")
    r.add_argument("--mode", default="rel", choices=["rel", "abs"],
                   help="(--progressive) error-bound mode")
    r.add_argument("--bits-per-plane", type=int, default=8,
                   help="(--progressive) residual bitplane width")
    r.add_argument("--max-planes", type=int, default=3,
                   help="(--progressive) max bitplanes per group")
    r.add_argument("--store", default="blob", choices=["blob", "bp"],
                   help="(--progressive) output form: single HPGX file "
                        "or BP store directory")
    r.add_argument("--aggregators", type=int, default=1,
                   help="(--progressive --store bp) aggregator subfiles")
    r.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record spans and write Chrome trace-event JSON")
    r.add_argument("--metrics", action="store_true",
                   help="print the stage/metrics summary after the run")
    _add_tune_flags(r, "the progressive refactor codec")
    r.set_defaults(func=cmd_refactor)

    g = sub.add_parser("retrieve", help="retrieve a refactored prefix")
    g.add_argument("input",
                   help=".mgrf stream, HPGX archive, or BP store directory")
    g.add_argument("output")
    g.add_argument("--levels", type=int, default=None,
                   help="(legacy stream) substream prefix length")
    g.add_argument("--error-bound", type=float, default=None, metavar="EPS",
                   help="(progressive) fetch the minimal prefix achieving "
                        "this absolute error")
    g.add_argument("--resolution", type=int, default=None, metavar="L",
                   help="(progressive) fetch the first L resolution groups")
    g.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record spans and write Chrome trace-event JSON")
    g.add_argument("--metrics", action="store_true",
                   help="print the stage/metrics summary after the run")
    g.set_defaults(func=cmd_retrieve)

    cp = sub.add_parser(
        "campaign",
        help="fault-tolerant chunked campaign with checkpoint/restart",
    )
    cp.add_argument("input", help="input .npy array (chunked along axis 0)")
    cp.add_argument("outdir", help="campaign directory (checkpoints + output)")
    cp.add_argument("--method", default="mgard-x",
                    choices=["mgard-x", "zfp-x", "sz", "huffman-x", "lz4"])
    cp.add_argument("--eb", type=float, default=1e-3)
    cp.add_argument("--mode", default="rel", choices=["rel", "abs"])
    cp.add_argument("--rate", type=float, default=None,
                    help="bits/value (zfp-x)")
    cp.add_argument("--ranks", type=int, default=4,
                    help="simulated MPI ranks (threads)")
    cp.add_argument("--chunk-elems", type=int, default=64,
                    help="elements along axis 0 per chunk")
    cp.add_argument("--adapter", default=None,
                    choices=["serial", "openmp", "cuda", "hip"])
    cp.add_argument("--faults", default=None, metavar="PLAN.json",
                    help="fault-plan JSON (see the faultplan command)")
    cp.add_argument("--resume", action="store_true",
                    help="resume from the directory's checkpoint")
    cp.add_argument("--checkpoint-every", type=int, default=4,
                    help="manifest save cadence in chunks")
    cp.add_argument("--trace", default=None, metavar="OUT.json",
                    help="record spans and write Chrome trace-event JSON")
    cp.add_argument("--metrics", action="store_true",
                    help="print the stage/metrics summary after the run")
    cp.set_defaults(func=cmd_campaign, tolerance=None)

    fp = sub.add_parser("faultplan", help="write a fault-plan JSON")
    fp.add_argument("output")
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument("--system", default=None,
                    choices=["summit", "frontier", "jetstream2", "workstation"],
                    help="derive rates/drop-outs from this system's MTBF")
    fp.add_argument("--nodes", type=int, default=1024,
                    help="campaign size for --system")
    fp.add_argument("--hours", type=float, default=12.0,
                    help="campaign wall time for --system")
    fp.add_argument("--device-batch-rate", type=float, default=0.0)
    fp.add_argument("--timeout-rate", type=float, default=0.0)
    fp.add_argument("--corrupt-rate", type=float, default=0.0)
    fp.add_argument("--transport-rate", type=float, default=0.0)
    fp.add_argument("--drop-rank", type=int, action="append",
                    help="rank to drop mid-run (repeatable)")
    fp.add_argument("--drop-after-chunks", type=int, default=1)
    fp.add_argument("--kill-after-chunks", type=int, default=None,
                    help="hard-kill the campaign after N chunks (restart drill)")
    fp.set_defaults(func=cmd_faultplan)

    sv = sub.add_parser(
        "serve", help="run the micro-batching reduction service (TCP)"
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral, printed at startup)")
    sv.add_argument("--adapter", default=None,
                    choices=["serial", "openmp", "cuda", "hip"])
    sv.add_argument("--threads", type=int, default=None,
                    help="worker threads (openmp adapter)")
    sv.add_argument("--workers", type=int, default=1,
                    help="batch-execution workers (each with its own CMM cache)")
    sv.add_argument("--processes", type=int, default=None, metavar="N",
                    help="run N worker *processes* instead of threads "
                         "(escapes the GIL for CPU-bound codec stages)")
    sv.add_argument("--max-batch", type=int, default=16,
                    help="flush a batch at this many requests")
    sv.add_argument("--max-bytes", type=int, default=4 << 20,
                    help="flush a batch at this many payload bytes")
    sv.add_argument("--max-latency-ms", type=float, default=2.0,
                    help="flush a batch this long after its first request")
    sv.add_argument("--max-pending", type=int, default=256,
                    help="admission limit (beyond it requests are rejected)")
    sv.add_argument("--trace", default=None, metavar="OUT.json",
                    help="record spans and write Chrome trace-event JSON")
    sv.add_argument("--metrics", action="store_true",
                    help="print the stage/metrics summary after draining")
    _add_tune_flags(sv, "service batch limits and adapter")
    sv.set_defaults(func=cmd_serve)

    cl = sub.add_parser(
        "cluster",
        help="run N service shards behind the consistent-hash router (TCP)",
    )
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral, printed at startup)")
    cl.add_argument("--shards", type=int, default=2,
                    help="shard count (hash-range owners)")
    cl.add_argument("--replicas", type=int, default=1,
                    help="replicas per shard (least-backlog balanced)")
    cl.add_argument("--backend", default="process",
                    choices=["task", "process"],
                    help="shard backend: in-loop tasks or real subprocesses")
    cl.add_argument("--adapter", default=None,
                    choices=["serial", "openmp", "cuda", "hip"])
    cl.add_argument("--threads", type=int, default=None,
                    help="worker threads per shard (openmp adapter)")
    cl.add_argument("--workers", type=int, default=1,
                    help="batch-execution workers per shard")
    cl.add_argument("--max-batch", type=int, default=16,
                    help="per-shard batch flush size")
    cl.add_argument("--max-latency-ms", type=float, default=2.0,
                    help="per-shard batch flush deadline")
    cl.add_argument("--max-pending", type=int, default=256,
                    help="per-shard service admission limit")
    cl.add_argument("--shard-max-pending", type=int, default=None,
                    help="router-side admission slice per shard "
                         "(default: --max-pending)")
    cl.add_argument("--vnodes", type=int, default=64,
                    help="virtual nodes per shard on the hash ring")
    cl.add_argument("--trace", default=None, metavar="OUT.json",
                    help="record spans and write Chrome trace-event JSON")
    cl.add_argument("--metrics", action="store_true",
                    help="print the stage/metrics summary after draining")
    _add_tune_flags(cl, "per-shard batch limits and adapter")
    cl.set_defaults(func=cmd_cluster)

    bl = sub.add_parser(
        "blast", help="closed-loop load generator for a served service"
    )
    bl.add_argument("--host", default="127.0.0.1")
    bl.add_argument("--port", type=int, default=None,
                    help="port of a running `repro serve`")
    bl.add_argument("--selfhost", action="store_true",
                    help="start an in-process service on an ephemeral port "
                         "and blast it (single-command demo)")
    bl.add_argument("--clients", type=int, default=8,
                    help="concurrent closed-loop clients (connections)")
    bl.add_argument("--requests", type=int, default=50,
                    help="round-trips per client")
    bl.add_argument("--codec", default="zfp-x",
                    choices=["mgard-x", "zfp-x", "huffman-x", "lz4", "sz",
                             "mixed"],
                    help="codec under load; 'mixed' drives the full "
                         "mixed-spec roster (spreads over cluster shards)")
    bl.add_argument("--rate", type=float, default=8.0,
                    help="bits/value (zfp-x)")
    bl.add_argument("--eb", type=float, default=1e-3,
                    help="error bound (lossy codecs)")
    bl.add_argument("--shape", default="16x16",
                    help="payload array shape, e.g. 64x64")
    bl.add_argument("--seed", type=int, default=7)
    bl.add_argument("--verify", action="store_true",
                    help="check lossless round-trips for exact equality")
    bl.add_argument("--compress-only", action="store_true",
                    help="skip the decompress half of each round-trip")
    bl.add_argument("--adapter", default=None,
                    choices=["serial", "openmp", "cuda", "hip"],
                    help="(selfhost) service adapter")
    bl.add_argument("--threads", type=int, default=None,
                    help="(selfhost) openmp worker threads")
    bl.add_argument("--workers", type=int, default=1,
                    help="(selfhost) service workers")
    bl.add_argument("--processes", type=int, default=None, metavar="N",
                    help="(selfhost) run N worker *processes* instead of "
                         "threads")
    bl.add_argument("--shm", action="store_true",
                    help="stage request payloads in shared memory instead "
                         "of the socket (local servers only)")
    bl.add_argument("--max-batch", type=int, default=16,
                    help="(selfhost) service flush size")
    bl.add_argument("--max-latency-ms", type=float, default=2.0,
                    help="(selfhost) service flush deadline")
    bl.add_argument("--cluster", action="store_true",
                    help="selfhost a sharded cluster front door and blast it")
    bl.add_argument("--shards", type=int, default=4,
                    help="(cluster) shard count")
    bl.add_argument("--replicas", type=int, default=1,
                    help="(cluster) replicas per shard")
    bl.add_argument("--backend", default="task",
                    choices=["task", "process"],
                    help="(cluster) shard backend")
    bl.add_argument("--shard-max-pending", type=int, default=None,
                    help="(cluster) router-side admission slice per shard")
    bl.add_argument("--kill-one", action="store_true",
                    help="(cluster) kill one shard mid-run — the failover "
                         "drill; the blast must still finish error-free")
    bl.add_argument("--kill-after-ms", type=float, default=150.0,
                    help="(cluster) delay before the --kill-one kill")
    _add_tune_flags(bl, "(selfhost) service batch limits and adapter")
    bl.set_defaults(func=cmd_blast)

    tn = sub.add_parser(
        "tune",
        help="run an auto-tuning campaign and persist the learned table",
    )
    tn.add_argument("--tuning-cache", default=None, metavar="PATH",
                    help="tuning-cache file (default: $HPDR_TUNE_CACHE or "
                         "~/.cache/hpdr/tuning.json)")
    tn.add_argument("--quick", action="store_true",
                    help="small matrix datasets and budgets (CI smoke)")
    tn.add_argument("--seed", type=int, default=0,
                    help="search seed (same seed => same proposal sequence)")
    tn.add_argument("--budget", type=int, default=None,
                    help="max configurations evaluated per key")
    tn.add_argument("--serve", action="store_true",
                    help="also tune the service micro-batch limits")
    tn.add_argument("--clients", type=int, default=16,
                    help="(--serve) closed-loop clients in the probe blast")
    tn.add_argument("--trace", default=None, metavar="OUT.json",
                    help="record spans and write Chrome trace-event JSON")
    tn.add_argument("--metrics", action="store_true",
                    help="print the stage/metrics summary after the campaign")
    tn.set_defaults(func=cmd_tune)

    ds = sub.add_parser("datasets", help="print the Table III inventory")
    ds.set_defaults(func=cmd_datasets)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
