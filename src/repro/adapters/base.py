"""Device adapter base class and registry."""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.functor import DomainFunctor, Functor
from repro.machine.specs import ProcessorSpec
from repro.trace.tracer import NULL_SPAN, Span, TRACER as _TRACER


@dataclass
class KernelRecord:
    """One simulated kernel execution in an adapter's trace."""

    name: str
    model: str          # "GEM" or "DEM"
    n_elements: int
    traffic_bytes: float
    duration: float     # seconds on the simulated device


class DeviceAdapter(abc.ABC):
    """Executes GEM and DEM on one backend.

    Subclasses set :attr:`family` ("serial", "openmp", "cuda", "hip")
    and implement the two execution entry points.  Adapters optionally
    carry a :class:`~repro.machine.specs.ProcessorSpec`; simulated
    adapters use it to derive kernel durations from the memory-bound
    roofline (``traffic / mem_bandwidth``), recorded in :attr:`trace`.
    """

    family: str = "abstract"

    def __init__(self, spec: ProcessorSpec | None = None) -> None:
        self.spec = spec
        self.trace: list[KernelRecord] = []

    # -- execution models ------------------------------------------------
    @abc.abstractmethod
    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        """GEM: run a group-parallel functor over ``(ngroups, ...)``."""

    def execute_domain(self, functor: DomainFunctor, data: Any) -> Any:
        """DEM: run a whole-domain functor (with global sync between stages).

        The default implementation runs stages sequentially, which is
        correct for every backend (Table II: execution order maintained
        by sequential execution / grid sync); subclasses add tracing.
        """
        with self.dem_span(functor):
            for stage in functor.stages():
                data = stage(data)
        self._record(functor, "DEM", _n_elements(data))
        return data

    def synchronize(self) -> None:
        """Block until all backend work completes (no-op off-device)."""

    # -- task-level parallelism -------------------------------------------
    def parallel_width(self) -> int:
        """Concurrent independent tasks this backend can run (1 = serial).

        Compressors use this to decide whether splitting work into
        independent segments (e.g. the Huffman ``HUFP`` container) can
        pay off.
        """
        return 1

    def map_tasks(self, fn, items) -> list:
        """Run ``fn`` over ``items``, preserving order.

        Unlike :meth:`execute_group_batch`, tasks are opaque Python
        callables (whole codec pipelines), not array functors.  The base
        implementation is sequential; thread-pool adapters overlap tasks
        whose NumPy kernels release the GIL.
        """
        return [fn(item) for item in items]

    # -- runtime tracing (HPDR-Trace) --------------------------------------
    def gem_span(self, functor, batch):
        """Wall-clock span for one GEM batch (no-op while tracing is off).

        The disabled path is one flag check returning the shared null
        span, so steady-state throughput is unaffected; enabled, the
        span lands in ``repro.trace`` tagged with the adapter family,
        group count and batch bytes — the real-execution counterpart of
        the simulated :class:`KernelRecord`.
        """
        if not _TRACER.enabled:
            return NULL_SPAN
        groups = int(batch.shape[0]) if getattr(batch, "ndim", 0) >= 1 else 0
        nbytes = int(getattr(batch, "nbytes", 0))
        return Span(
            _TRACER,
            f"gem.{functor.name}",
            f"adapter.{self.family}",
            {"groups": groups, "nbytes": nbytes},
        )

    def dem_span(self, functor):
        """Wall-clock span for one DEM execution (no-op while disabled)."""
        if not _TRACER.enabled:
            return NULL_SPAN
        return Span(_TRACER, f"dem.{functor.name}", f"adapter.{self.family}", {})

    # -- simulated tracing -------------------------------------------------
    def _record(self, functor: Functor, model: str, n_elements: int) -> None:
        if self.spec is None:
            return
        traffic = functor.cost_bytes(n_elements)
        duration = traffic / self.spec.mem_bandwidth
        self.trace.append(
            KernelRecord(functor.name, model, n_elements, traffic, duration)
        )

    def simulated_time(self) -> float:
        """Total simulated kernel seconds recorded so far."""
        return sum(r.duration for r in self.trace)

    def reset_trace(self) -> None:
        self.trace.clear()

    @property
    def name(self) -> str:
        if self.spec is not None:
            return f"{self.family}({self.spec.name})"
        return self.family

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


def _n_elements(data: Any) -> int:
    if isinstance(data, np.ndarray):
        return int(data.size)
    if isinstance(data, (tuple, list)):
        return sum(_n_elements(d) for d in data)
    if isinstance(data, dict):
        return sum(_n_elements(d) for d in data.values())
    return 1


_REGISTRY: dict[str, type] = {}


def register_adapter(family: str, cls: type) -> None:
    _REGISTRY[family] = cls


def get_adapter(family: str, spec: ProcessorSpec | None = None, **kwargs) -> DeviceAdapter:
    """Instantiate an adapter by family name.

    ``get_adapter("cuda")`` returns a fresh :class:`CudaSimAdapter`, etc.
    Extending HPDR to a new backend = implementing a subclass and
    registering it — the paper's extensibility claim for Kokkos/SYCL.
    """
    key = family.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown adapter family {family!r}; available: {sorted(_REGISTRY)}")
    adapter = _REGISTRY[key](spec=spec, **kwargs)
    if os.environ.get("HPDR_SAN", "") not in ("", "0"):
        # tsan mode: every serial/openmp adapter handed out is shadow-
        # checked.  The env test guards the import so unsanitized runs
        # never load repro.check.
        from repro.check.sanitizer import wrap_if_enabled

        adapter = wrap_if_enabled(adapter)
    return adapter


def list_adapters() -> list[str]:
    return sorted(_REGISTRY)
