"""Multi-core CPU adapter (the paper's OpenMP backend).

Table II strategy: groups are parallelized across CPU cores while each
group's workload runs sequentially, so a core keeps one group's working
set resident in its cache.  Multi-stage GEM order is maintained by
sequential stage execution; DEM parallelizes the whole domain across all
cores with working data shared through DRAM.

In Python, "cores" are a thread pool: NumPy array kernels release the
GIL, so chunks genuinely run concurrently on multi-core hosts.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.adapters.base import DeviceAdapter, register_adapter
from repro.machine.specs import ProcessorSpec
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import TRACER as _TRACER

#: pool queue-depth histogram buckets (tasks submitted per fan-out).
_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _observe_queue_depth(depth: int, kind: str) -> None:
    """Record one fan-out's task count (tracing-enabled runs only)."""
    _METRICS.histogram(
        "hpdr_pool_queue_depth",
        "tasks submitted to the thread pool per fan-out",
        buckets=_DEPTH_BUCKETS,
    ).observe(depth, kind=kind)


class OpenMPAdapter(DeviceAdapter):
    family = "openmp"

    def __init__(
        self,
        spec: ProcessorSpec | None = None,
        num_threads: int | None = None,
    ) -> None:
        super().__init__(spec)
        if num_threads is None:
            if spec is not None:
                num_threads = spec.units
            else:
                num_threads = os.cpu_count() or 1
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        # One persistent pool per adapter instance: repeated reduction
        # calls must not pay thread spawn costs (the CMM philosophy
        # applied to execution resources).
        self._pool = ThreadPoolExecutor(max_workers=num_threads) if num_threads > 1 else None

    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        ngroups = batch.shape[0] if batch.ndim >= 1 else 0
        if ngroups == 0:
            return batch
        if self._pool is None or ngroups == 1:
            with self.gem_span(functor, batch):
                out = functor.apply(batch)
            self._record(functor, "GEM", int(batch.size))
            return out
        nchunks = min(self.num_threads, ngroups)
        with self.gem_span(functor, batch).set(chunks=nchunks):
            if _TRACER.enabled:
                _observe_queue_depth(nchunks, kind="gem")
            bounds = np.linspace(0, ngroups, nchunks + 1, dtype=np.intp)
            chunks = [batch[bounds[i] : bounds[i + 1]] for i in range(nchunks)]
            if getattr(functor, "reuses_output", False):
                # A pool thread may run several chunks back to back;
                # scratch-backed results must be copied before the next
                # apply reuses the memory.
                run = lambda chunk: functor.apply(chunk).copy()
            else:
                run = functor.apply
            results = list(self._pool.map(run, chunks))
            out = np.concatenate(results, axis=0)
        self._record(functor, "GEM", int(batch.size))
        return out

    def parallel_width(self) -> int:
        return self.num_threads

    def map_tasks(self, fn, items) -> list:
        items = list(items)
        if self._pool is None or len(items) <= 1:
            return [fn(item) for item in items]
        if _TRACER.enabled:
            _observe_queue_depth(len(items), kind="task")
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC path
        try:
            self.close()
        except Exception:
            pass


register_adapter(OpenMPAdapter.family, OpenMPAdapter)
