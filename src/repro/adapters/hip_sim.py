"""Simulated AMD GPU adapter.

The HIP analog of :mod:`repro.adapters.cuda_sim`: groups map to Compute
Units, whole-domain sync uses HIP cooperative groups.  Functionally
identical execution — which is itself a statement of the paper's
portability thesis: the abstraction layer, not the backend, defines the
numerical result.
"""

from __future__ import annotations

from repro.adapters.base import register_adapter
from repro.adapters.cuda_sim import CudaSimAdapter
from repro.machine.specs import MI250X, ProcessorSpec


class HipSimAdapter(CudaSimAdapter):
    family = "hip"
    default_spec: ProcessorSpec = MI250X


register_adapter(HipSimAdapter.family, HipSimAdapter)
