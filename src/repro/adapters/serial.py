"""Reference serial adapter.

This backend is the portability baseline — the "most compatible
processor" of Section II-B.  Groups execute sequentially; by default the
whole group batch is processed in one vectorized call (sequential at the
Python level, identical numerics).

``strict=True`` switches to a one-group-at-a-time oracle mode that
doubles as a functor *purity* check: a functor whose block outputs
depend on other blocks diverges from the batched GPU adapters and fails
the cross-adapter tests.
"""

from __future__ import annotations

import numpy as np

from repro.adapters.base import DeviceAdapter, register_adapter
from repro.machine.specs import ProcessorSpec


class SerialAdapter(DeviceAdapter):
    family = "serial"

    def __init__(self, spec: ProcessorSpec | None = None, strict: bool = False) -> None:
        super().__init__(spec)
        self.strict = strict

    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        if batch.ndim < 1 or batch.shape[0] == 0:
            return batch
        with self.gem_span(functor, batch):
            if self.strict:
                copy = getattr(functor, "reuses_output", False)
                outs = []
                for i in range(batch.shape[0]):
                    out = functor.apply(batch[i : i + 1])
                    outs.append(out.copy() if copy else out)
                result = np.concatenate(outs, axis=0)
            else:
                result = functor.apply(batch)
        self._record(functor, "GEM", int(batch.size))
        return result


register_adapter(SerialAdapter.family, SerialAdapter)
