"""Device adapters (paper Section III-C, Table II).

Adapters execute the two execution models (GEM/DEM) on a concrete
backend:

* :class:`~repro.adapters.serial.SerialAdapter` — reference
  single-core backend; groups run one after another.
* :class:`~repro.adapters.openmp.OpenMPAdapter` — multi-core CPU
  backend; groups are parallelized across cores (threads — NumPy
  releases the GIL on array kernels), each group's workload runs
  sequentially for cache locality, exactly the strategy in Table II.
* :class:`~repro.adapters.cuda_sim.CudaSimAdapter` /
  :class:`~repro.adapters.hip_sim.HipSimAdapter` — simulated GPU
  backends: groups map to SMs/CUs, which in NumPy terms means the whole
  group batch executes as one vectorized call; kernel cost is recorded
  via the memory-bound roofline (traffic / device bandwidth) for the
  simulated trace.

All adapters produce **bit-identical** results for the same functor —
this is the portability guarantee the framework is named for, and it is
enforced by the cross-adapter test suite.
"""

from repro.adapters.base import DeviceAdapter, KernelRecord, get_adapter, list_adapters
from repro.adapters.serial import SerialAdapter
from repro.adapters.openmp import OpenMPAdapter
from repro.adapters.cuda_sim import CudaSimAdapter
from repro.adapters.hip_sim import HipSimAdapter
from repro.adapters.sycl_sim import SyclSimAdapter

__all__ = [
    "DeviceAdapter",
    "KernelRecord",
    "get_adapter",
    "list_adapters",
    "SerialAdapter",
    "OpenMPAdapter",
    "CudaSimAdapter",
    "HipSimAdapter",
    "SyclSimAdapter",
]
