"""Simulated NVIDIA GPU adapter.

Substitution for the paper's CUDA backend: the environment has no GPU,
so "groups → SMs, group workload → GPU cores" (Table II) is realized as
one fully vectorized NumPy call over the entire group batch — the
closest semantic analog of every group executing concurrently.  Kernel
*cost* on the simulated device is recorded through the memory-bound
roofline using the attached processor spec (V100 by default), feeding
the adapter-level traces used in stage-breakdown analyses.

Multi-stage GEM staging ("shared memory", block-level sync) degenerates
to intermediate arrays between stage calls; multi-stage DEM ("grid
sync", DRAM staging) is the same with a whole-domain scope — both
preserve the execution-order semantics that matter for correctness.
"""

from __future__ import annotations

import numpy as np

from repro.adapters.base import DeviceAdapter, register_adapter
from repro.machine.specs import ProcessorSpec, V100


class CudaSimAdapter(DeviceAdapter):
    family = "cuda"

    #: default simulated processor when none is supplied.
    default_spec: ProcessorSpec = V100

    def __init__(self, spec: ProcessorSpec | None = None) -> None:
        super().__init__(spec if spec is not None else self.default_spec)
        if self.spec.family != self.family:
            raise ValueError(
                f"{type(self).__name__} drives {self.family!r} devices; "
                f"{self.spec.name} is a {self.spec.family!r} device"
            )

    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        with self.gem_span(functor, batch):
            out = functor.apply(batch)
        self._record(functor, "GEM", int(batch.size))
        return out


register_adapter(CudaSimAdapter.family, CudaSimAdapter)
