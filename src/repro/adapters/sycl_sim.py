"""Simulated SYCL adapter — the extensibility path the paper names.

Section III-C: "HPDR can be easily extended to support newer
architectures or leveraging general-purpose portability libraries such
as Kokkos and SYCL by implementing new device adapters."  This adapter
demonstrates exactly that: a single backend that drives *any* processor
spec (SYCL targets NVIDIA, AMD and Intel devices alike), implemented in
a few lines against the adapter ABC — and, because the abstraction layer
defines the numerics, its results are bit-identical to every other
backend's.
"""

from __future__ import annotations

import numpy as np

from repro.adapters.base import DeviceAdapter, register_adapter
from repro.machine.specs import ProcessorSpec, V100


class SyclSimAdapter(DeviceAdapter):
    family = "sycl"

    def __init__(self, spec: ProcessorSpec | None = None) -> None:
        # SYCL is vendor-agnostic: accept any spec (default V100 to
        # mirror a CUDA-backend SYCL runtime).
        super().__init__(spec if spec is not None else V100)

    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        with self.gem_span(functor, batch):
            out = functor.apply(batch)
        self._record(functor, "GEM", int(batch.size))
        return out


register_adapter(SyclSimAdapter.family, SyclSimAdapter)
