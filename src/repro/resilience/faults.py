"""Deterministic fault-injection harness.

A :class:`FaultPlan` is a *seeded schedule*: whether the Nth operation
at a given site fails is a pure function of ``(seed, kind, site, N)``
via SHA-256, so a plan reproduces the exact same fault sequence across
runs, machines and thread interleavings (each site keeps its own
counter, making draws independent of cross-site ordering).  That
determinism is what lets the checkpoint/restart tests assert
*bit-exact* equality between an interrupted campaign and a clean one.

Fault kinds (paper §VII regime — device faults, slow ranks, partial
I/O failures at 1,024-node scale):

=================  ====================================================
``device_batch``   a GEM batch raises :class:`DeviceBatchFault`
``timeout``        the adapter raises a transient
                   :class:`AdapterTimeoutFault`
``corrupt``        a reduced-chunk payload is bit-flipped in transit
                   (checksum-detectable)
``drop_ranks``     listed ranks raise ``RankDropout`` after
                   ``drop_after_chunks`` completed chunks
``kill_after``     the whole campaign dies (``CampaignKilled``) once N
                   chunks completed — exercises checkpoint/restart
=================  ====================================================

Every injection increments ``hpdr_faults_injected_total`` (labelled by
kind) unconditionally — recovery events are rare and must be visible in
any metrics scrape, unlike hot-path metrics which are gated on the
tracer flag.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict, dataclass

from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import Span, TRACER as _TRACER

_RATE_KINDS = ("device_batch", "timeout", "corrupt", "transport")


def _unit_draw(seed: int, kind: str, site: str, n: int) -> float:
    """Deterministic uniform in [0, 1) for one potential injection."""
    h = hashlib.sha256(f"{seed}:{kind}:{site}:{n}".encode()).digest()
    return int.from_bytes(h[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, rate-based fault schedule (JSON-serializable).

    Rates are per-operation probabilities in [0, 1]; ``drop_ranks``
    lists rank ids that leave the computation after completing
    ``drop_after_chunks`` chunks; ``kill_after_chunks`` hard-kills the
    campaign once that many chunks completed (``None`` = never).
    """

    seed: int = 0
    device_batch_rate: float = 0.0
    timeout_rate: float = 0.0
    corrupt_rate: float = 0.0
    transport_rate: float = 0.0
    drop_ranks: tuple[int, ...] = ()
    drop_after_chunks: int = 1
    kill_after_chunks: int | None = None

    def __post_init__(self) -> None:
        for kind in _RATE_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.drop_after_chunks < 0:
            raise ValueError("drop_after_chunks must be non-negative")
        if self.kill_after_chunks is not None and self.kill_after_chunks < 0:
            raise ValueError("kill_after_chunks must be non-negative")
        object.__setattr__(self, "drop_ranks", tuple(self.drop_ranks))

    def rate(self, kind: str) -> float:
        if kind not in _RATE_KINDS:
            raise KeyError(f"unknown fault kind {kind!r}; known: {_RATE_KINDS}")
        return getattr(self, f"{kind}_rate")

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["drop_ranks"] = list(self.drop_ranks)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**d)

    def save(self, path) -> None:
        from repro.util import atomic_write_json

        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path) as f:
            return cls.from_dict(json.load(f))


@dataclass
class Injection:
    """One fired injection (test/debug introspection)."""

    kind: str
    site: str
    index: int


class FaultInjector:
    """Per-run injection state over a :class:`FaultPlan`.

    Thread-safe: rank threads share one injector, and each
    ``(kind, site)`` pair advances its own counter, so the schedule a
    given site sees does not depend on what other sites or threads do.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counters: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self.injections: list[Injection] = []

    def _next(self, kind: str, site: str) -> int:
        with self._lock:
            n = self._counters.get((kind, site), 0)
            self._counters[(kind, site)] = n + 1
            return n

    def _record(self, kind: str, site: str, n: int) -> None:
        with self._lock:
            self.injections.append(Injection(kind, site, n))
        _METRICS.counter(
            "hpdr_faults_injected_total", "faults injected by the harness"
        ).inc(kind=kind)
        if _TRACER.enabled:
            with Span(_TRACER, f"fault.{kind}", "resilience",
                      {"site": site, "index": n}):
                pass

    def draw(self, kind: str, site: str = "") -> bool:
        """True when the Nth ``kind`` operation at ``site`` must fail."""
        rate = self.plan.rate(kind)
        n = self._next(kind, site)
        if rate <= 0.0:
            return False
        hit = _unit_draw(self.plan.seed, kind, site, n) < rate
        if hit:
            self._record(kind, site, n)
        return hit

    def corrupt(self, payload: bytes, site: str = "") -> bytes | None:
        """Corrupted copy of ``payload`` when the draw fires, else None.

        The flipped byte position is itself deterministic, so the
        corrupted stream — and therefore the checksum mismatch that
        detects it — is reproducible.
        """
        rate = self.plan.corrupt_rate
        n = self._next("corrupt", site)
        if rate <= 0.0 or not payload:
            return None
        if _unit_draw(self.plan.seed, "corrupt", site, n) >= rate:
            return None
        self._record("corrupt", site, n)
        pos = int.from_bytes(
            hashlib.sha256(f"{self.plan.seed}:pos:{site}:{n}".encode()).digest()[:8],
            "big",
        ) % len(payload)
        out = bytearray(payload)
        out[pos] ^= 0xFF
        return bytes(out)

    def should_drop(self, rank: int, completed_chunks: int) -> bool:
        """True once ``rank`` is scheduled to leave the computation."""
        return (
            rank in self.plan.drop_ranks
            and completed_chunks >= self.plan.drop_after_chunks
        )

    def should_kill(self, completed_chunks: int) -> bool:
        """True once the campaign-wide kill threshold is reached."""
        k = self.plan.kill_after_chunks
        return k is not None and completed_chunks >= k

    def count(self, kind: str | None = None) -> int:
        """Injections fired so far (optionally filtered by kind)."""
        with self._lock:
            if kind is None:
                return len(self.injections)
            return sum(1 for i in self.injections if i.kind == kind)


def plan_for_system(system, nodes: int, wall_hours: float,
                    seed: int = 0) -> FaultPlan:
    """Derive a plausible :class:`FaultPlan` from a system's MTBF.

    Converts the expected node-failure count of a ``wall_hours``-long
    campaign on ``nodes`` nodes (see
    :meth:`repro.machine.topology.SystemSpec.expected_faults`) into rank
    drop-outs, plus a small transient-fault floor for device batches and
    I/O — the "faults are the norm at 1,024 nodes" regime of §VII.
    """
    expected = system.expected_faults(nodes, wall_hours)
    ndrop = min(nodes, int(round(expected)))
    # Deterministic choice of victim ranks from the seed.
    victims = sorted(
        int(_unit_draw(seed, "victim", system.name, i) * nodes)
        for i in range(ndrop)
    )
    return FaultPlan(
        seed=seed,
        device_batch_rate=0.01,
        timeout_rate=0.005,
        corrupt_rate=0.002,
        drop_ranks=tuple(dict.fromkeys(victims)),
        drop_after_chunks=1,
    )
