"""Fault-injecting and self-healing device-adapter wrappers.

Layering (innermost first)::

    real adapter  →  FaultyAdapter(plan)  →  ResilientAdapter(policy)

:class:`FaultyAdapter` raises scheduled
:class:`~repro.resilience.errors.DeviceBatchFault` /
:class:`~repro.resilience.errors.AdapterTimeoutFault` *before*
delegating, so a retried call re-executes the whole batch on intact
state.  :class:`ResilientAdapter` retries per the policy and, when a
call's budget is exhausted or its circuit breaker opens, *demotes* the
device: all further work routes to the fallback adapter (serial by
default — the "most compatible processor" of §II-B).  Portability makes
demotion safe: every backend produces bit-identical streams, so a
campaign that lost a device finishes with identical bytes, only slower.

Both wrappers satisfy the full :class:`~repro.adapters.base.DeviceAdapter`
contract (``parallel_width``, ``map_tasks``, ``synchronize``), so any
compressor runs on them unmodified.
"""

from __future__ import annotations

import numpy as np

from repro.adapters.base import DeviceAdapter
from repro.resilience.errors import (
    AdapterTimeoutFault,
    DeviceBatchFault,
    ResilienceExhausted,
)
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import CircuitBreaker, RetryPolicy, retry_call
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import Span, TRACER as _TRACER


class _DelegatingAdapter(DeviceAdapter):
    """Shared delegation plumbing for adapter wrappers."""

    def __init__(self, inner: DeviceAdapter) -> None:
        super().__init__(inner.spec)
        self.inner = inner

    def synchronize(self) -> None:
        self.inner.synchronize()

    def parallel_width(self) -> int:
        return self.inner.parallel_width()

    def map_tasks(self, fn, items) -> list:
        return self.inner.map_tasks(fn, items)

    @property
    def name(self) -> str:
        return f"{self.family}({self.inner.name})"


class FaultyAdapter(_DelegatingAdapter):
    """Injects scheduled device faults in front of any adapter."""

    family = "faulty"

    def __init__(self, inner: DeviceAdapter,
                 injector: FaultInjector | FaultPlan) -> None:
        super().__init__(inner)
        if isinstance(injector, FaultPlan):
            injector = FaultInjector(injector)
        self.injector = injector

    def _maybe_fail(self, site: str) -> None:
        if self.injector.draw("timeout", site):
            raise AdapterTimeoutFault(site, "simulated driver timeout")
        if self.injector.draw("device_batch", site):
            raise DeviceBatchFault(site, "simulated device batch failure")

    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        self._maybe_fail(f"gem.{functor.name}")
        return self.inner.execute_group_batch(functor, batch)

    def execute_domain(self, functor, data):
        self._maybe_fail(f"dem.{functor.name}")
        return self.inner.execute_domain(functor, data)


class ResilientAdapter(_DelegatingAdapter):
    """Retry + circuit-breaker + graceful degradation around an adapter.

    Parameters
    ----------
    inner:
        The (possibly faulty) primary adapter.
    fallback:
        Adapter to demote to when the primary is given up on.  Defaults
        to a fresh serial adapter; pass ``None`` to disable demotion
        (exhaustion then propagates).
    policy / breaker:
        Retry budget and consecutive-failure threshold.
    sleep:
        Backoff sleeper (injectable so tests pay no wall-clock).
    """

    family = "resilient"

    def __init__(
        self,
        inner: DeviceAdapter,
        fallback: DeviceAdapter | None = "serial",
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep=None,
    ) -> None:
        super().__init__(inner)
        if fallback == "serial":
            from repro.adapters.serial import SerialAdapter

            fallback = SerialAdapter(spec=inner.spec)
        self.fallback = fallback
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._sleep = sleep
        self.degraded = False

    # -- degradation -------------------------------------------------------
    def _active(self) -> DeviceAdapter:
        return self.fallback if self.degraded else self.inner

    def _degrade(self, site: str, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        _METRICS.counter(
            "hpdr_degradations_total",
            "devices demoted to their fallback adapter",
        ).inc(family=self.inner.family)
        if _TRACER.enabled:
            with Span(_TRACER, "resilience.degrade", "resilience",
                      {"site": site, "from": self.inner.family,
                       "to": self.fallback.family, "reason": reason}):
                pass

    # -- guarded execution -------------------------------------------------
    def _guarded(self, site: str, call):
        """Run ``call`` against the active adapter with retry + demotion."""
        if (not self.degraded and self.breaker.is_open
                and self.fallback is not None):
            self._degrade(site, "circuit breaker open")
        try:
            return retry_call(
                lambda: call(self._active()),
                self.policy,
                site=site,
                sleep=self._sleep,
                on_failure=lambda exc: self.breaker.record_failure(),
                on_success=self.breaker.record_success,
            )
        except ResilienceExhausted:
            if self.degraded or self.fallback is None:
                raise
            self._degrade(site, "retry budget exhausted")
            return call(self.fallback)

    def execute_group_batch(self, functor, batch: np.ndarray) -> np.ndarray:
        return self._guarded(
            f"gem.{functor.name}",
            lambda a: a.execute_group_batch(functor, batch),
        )

    def execute_domain(self, functor, data):
        return self._guarded(
            f"dem.{functor.name}",
            lambda a: a.execute_domain(functor, data),
        )

    # Route task mapping and width through the *active* adapter so a
    # demoted device also stops fanning tasks out to a dead pool.
    def parallel_width(self) -> int:
        return self._active().parallel_width()

    def map_tasks(self, fn, items) -> list:
        return self._active().map_tasks(fn, items)

    def synchronize(self) -> None:
        self._active().synchronize()


def resilient_adapter(
    family: str = "serial",
    plan: FaultPlan | None = None,
    injector: FaultInjector | None = None,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    fallback: DeviceAdapter | None = "serial",
    sleep=None,
    **adapter_kwargs,
) -> ResilientAdapter:
    """Build the standard chain: ``get_adapter → FaultyAdapter → ResilientAdapter``.

    With no plan/injector the chain omits the faulty layer and simply
    hardens a real adapter (useful against genuinely flaky backends).
    """
    from repro.adapters.base import get_adapter

    base: DeviceAdapter = get_adapter(family, **adapter_kwargs)
    if injector is None and plan is not None:
        injector = FaultInjector(plan)
    inner = FaultyAdapter(base, injector) if injector is not None else base
    return ResilientAdapter(
        inner, fallback=fallback, policy=policy, breaker=breaker, sleep=sleep
    )
