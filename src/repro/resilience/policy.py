"""Retry/backoff policy engine and circuit breaker.

Design points, all in service of *deterministic* recovery:

* **No jitter.**  Backoff delays are a pure function of the attempt
  number (``base · multiplier^(attempt-1)``, capped).  Jitter exists to
  decorrelate thundering herds against shared services; here the shared
  "service" is a simulated device, and determinism — the same fault
  plan producing the same recovery sequence — is worth more.
* **Typed exhaustion.**  When the budget runs dry the caller gets
  :class:`~repro.resilience.errors.ResilienceExhausted` carrying the
  site, attempt count and last underlying error, never a bare re-raise
  of attempt N's exception.
* **Observable.**  Every re-attempt increments ``hpdr_retries_total``
  (labelled by site) unconditionally, and records a
  ``resilience.retry`` span when tracing is on — so the acceptance
  check "faults injected == retries performed" is a metrics query.

The :class:`CircuitBreaker` implements graceful degradation: after N
*consecutive* failures it opens, and the
:class:`~repro.resilience.adapter.ResilientAdapter` responds by demoting
the failing device to its fallback (the serial adapter).  Because every
HPDR backend produces bit-identical streams (the portability
guarantee), demotion changes throughput, never bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.resilience.errors import InjectedFault, ResilienceExhausted
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import Span, TRACER as _TRACER
from repro.util import CorruptStreamError

#: exception types a retry loop treats as transient by default.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    InjectedFault,
    CorruptStreamError,
    TimeoutError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a hard attempt budget.

    ``max_attempts`` counts *total* tries: 4 means one initial attempt
    plus up to three retries.  Delays are deterministic (no jitter, see
    module docstring); tests pass ``sleep=lambda s: None`` to
    :func:`retry_call` so backoff costs no wall-clock.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt N (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )

    def delays(self) -> list[float]:
        """The full deterministic backoff schedule (len = budget - 1)."""
        return [self.delay(a) for a in range(1, self.max_attempts)]


class CircuitBreaker:
    """Opens after ``threshold`` consecutive failures.

    Not thread-safe by design: each :class:`ResilientAdapter` owns one
    breaker per device, and a device's operations are serialized by the
    adapter contract.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.total_failures = 0
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.threshold:
            self._open = True

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def reset(self) -> None:
        self.consecutive_failures = 0
        self._open = False


def retry_call(
    fn: Callable[[], object],
    policy: RetryPolicy | None = None,
    *,
    site: str = "",
    retry_on: Iterable[type[BaseException]] = DEFAULT_RETRY_ON,
    sleep: Callable[[float], None] | None = None,
    on_failure: Callable[[BaseException], None] | None = None,
    on_success: Callable[[], None] | None = None,
):
    """Run ``fn`` under ``policy``; raise ``ResilienceExhausted`` on dry budget.

    Only exceptions matching ``retry_on`` are retried — anything else
    (a real bug, ``CampaignKilled``) propagates immediately.
    ``on_failure`` fires per caught failure (circuit-breaker feed),
    ``on_success`` once on the successful attempt.
    """
    policy = policy or RetryPolicy()
    retry_on = tuple(retry_on)
    sleep = sleep if sleep is not None else time.sleep
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            result = fn()
        except retry_on as exc:
            last = exc
            if on_failure is not None:
                on_failure(exc)
            if attempt >= policy.max_attempts:
                raise ResilienceExhausted(site, attempt, exc) from exc
            _METRICS.counter(
                "hpdr_retries_total", "recovery re-attempts performed"
            ).inc(site=site)
            if _TRACER.enabled:
                with Span(_TRACER, "resilience.retry", "resilience",
                          {"site": site, "attempt": attempt}):
                    pass
            sleep(policy.delay(attempt))
        else:
            if on_success is not None:
                on_success()
            return result
    raise ResilienceExhausted(site, policy.max_attempts, last)  # pragma: no cover
