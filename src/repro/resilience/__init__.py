"""HPDR-Resilience: fault injection, recovery and campaign restart.

The paper's evaluation runs on 1,024 nodes (§VII); at that scale,
device faults, driver timeouts, corrupted payloads and node losses are
routine, and a reduction campaign that cannot absorb them cannot
finish.  This package makes HPDR campaigns survivable — and makes the
failure regime *testable* by injecting every fault class from a seeded,
deterministic schedule.

Modules
-------
``faults``
    :class:`FaultPlan` (seeded, serializable schedule) and
    :class:`FaultInjector` (deterministic per-site draws);
    :func:`plan_for_system` derives rates from a machine model's MTBF.
``policy``
    :class:`RetryPolicy` (jitter-free exponential backoff),
    :class:`CircuitBreaker`, and :func:`retry_call` with typed
    :class:`ResilienceExhausted` on a dry budget.
``adapter``
    :class:`FaultyAdapter` (injects device faults) and
    :class:`ResilientAdapter` (retry + breaker + demotion to serial).
``transport``
    :class:`FaultyTransport` (lossy/corrupting writes) and
    :class:`VerifiedWriter` (CRC read-back + retry).
``checkpoint``
    :class:`CheckpointManager` / :class:`CampaignManifest` — atomic,
    self-validating campaign state.
``campaign``
    :class:`CampaignRunner` — the integrated fault-tolerant scale-out
    runner with ``run(resume=True)`` restart, byte-identical to an
    uninterrupted run.

Observability: injections, retries and degradations surface as
``hpdr_faults_injected_total``, ``hpdr_retries_total`` and
``hpdr_degradations_total`` in :mod:`repro.trace.metrics`, plus spans
when tracing is enabled.
"""

from repro.resilience.adapter import (
    FaultyAdapter,
    ResilientAdapter,
    resilient_adapter,
)
from repro.resilience.campaign import (
    CampaignResult,
    CampaignRunner,
    output_digest,
    reconstruct,
)
from repro.resilience.checkpoint import (
    CampaignManifest,
    CheckpointManager,
    cmm_digest,
    payload_digest,
)
from repro.resilience.errors import (
    AdapterTimeoutFault,
    CampaignKilled,
    CorruptPayloadFault,
    DeviceBatchFault,
    InjectedFault,
    RankDropout,
    ResilienceExhausted,
    TransportFault,
)
from repro.resilience.faults import FaultInjector, FaultPlan, plan_for_system
from repro.resilience.policy import CircuitBreaker, RetryPolicy, retry_call
from repro.resilience.transport import FaultyTransport, VerifiedWriter

__all__ = [
    "AdapterTimeoutFault",
    "CampaignKilled",
    "CampaignManifest",
    "CampaignResult",
    "CampaignRunner",
    "CheckpointManager",
    "CircuitBreaker",
    "CorruptPayloadFault",
    "DeviceBatchFault",
    "FaultInjector",
    "FaultPlan",
    "FaultyAdapter",
    "FaultyTransport",
    "InjectedFault",
    "RankDropout",
    "ResilienceExhausted",
    "ResilientAdapter",
    "RetryPolicy",
    "TransportFault",
    "VerifiedWriter",
    "cmm_digest",
    "output_digest",
    "payload_digest",
    "plan_for_system",
    "reconstruct",
    "resilient_adapter",
    "retry_call",
]
