"""Campaign checkpoint/restart: durable manifests + self-validating chunks.

Layout of a campaign working directory::

    workdir/
      manifest.json            # atomic (fsync-and-rename), JSON
      chunks/chunk_000042.bin  # one file per completed chunk, atomic

Every chunk file is *self-validating* — ``HPCK`` magic, CRC32 and
length header ahead of the payload — so restart trusts the filesystem,
not the manifest: :meth:`CheckpointManager.recover` re-scans the chunk
directory, keeps every file whose checksum verifies, and discards torn
or corrupt ones.  The manifest adds what files cannot carry: the
campaign *fingerprint* (so a resume against different data/config fails
loudly), per-rank progress, and CMM context digests for observability.

All writes go through :func:`repro.util.atomic_write_bytes`; an
injected kill between any two syscalls leaves either the old or the new
state, never a torn file — the property the torn-manifest test attacks.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.trace.tracer import Span, TRACER as _TRACER
from repro.util import atomic_write_bytes, atomic_write_json

_CHUNK_MAGIC = b"HPCK"
_CHUNK_HEADER = struct.Struct("<4sIQ")   # magic, crc32, payload length

MANIFEST_VERSION = 1


def payload_digest(payload: bytes) -> str:
    """Stable content digest used in manifests and result comparison."""
    return hashlib.sha256(payload).hexdigest()


def cmm_digest(cache) -> str:
    """Digest of a ContextCache's key set (which contexts are warm).

    Matching digests across a checkpoint boundary mean the resumed run
    rebuilt the same reduction contexts — a cheap invariant that has
    caught key-schema drift between versions.
    """
    keys = sorted(repr(k) for k in getattr(cache, "_map", {}))
    return hashlib.sha256("\n".join(keys).encode()).hexdigest()


@dataclass
class CampaignManifest:
    """Persistent record of campaign identity and progress."""

    fingerprint: str
    total_chunks: int
    completed: dict[int, dict] = field(default_factory=dict)
    rank_progress: dict[int, int] = field(default_factory=dict)
    context_digests: dict[int, str] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "total_chunks": self.total_chunks,
            # JSON keys are strings; normalize on load.
            "completed": {str(k): v for k, v in self.completed.items()},
            "rank_progress": {str(k): v for k, v in self.rank_progress.items()},
            "context_digests": {
                str(k): v for k, v in self.context_digests.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignManifest":
        if d.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {d.get('version')!r}"
            )
        return cls(
            fingerprint=d["fingerprint"],
            total_chunks=int(d["total_chunks"]),
            completed={int(k): v for k, v in d.get("completed", {}).items()},
            rank_progress={
                int(k): int(v) for k, v in d.get("rank_progress", {}).items()
            },
            context_digests={
                int(k): v for k, v in d.get("context_digests", {}).items()
            },
        )

    @property
    def done(self) -> bool:
        return len(self.completed) >= self.total_chunks


class CheckpointManager:
    """Atomic persistence of campaign progress under one directory.

    ``every`` bounds manifest-write amplification: the manifest is saved
    after every Nth recorded chunk (and always on :meth:`flush`).  Chunk
    files themselves are written immediately and atomically — losing the
    last manifest save costs nothing, because :meth:`recover` rebuilds
    completion state from the self-validating chunk files.
    """

    def __init__(self, workdir, every: int = 4) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.workdir = Path(workdir)
        self.chunk_dir = self.workdir / "chunks"
        self.manifest_path = self.workdir / "manifest.json"
        self.every = every
        self._since_save = 0

    # -- chunk files -------------------------------------------------------
    def chunk_path(self, chunk_id: int) -> Path:
        return self.chunk_dir / f"chunk_{chunk_id:06d}.bin"

    def write_chunk(self, chunk_id: int, payload: bytes) -> None:
        self.chunk_dir.mkdir(parents=True, exist_ok=True)
        blob = _CHUNK_HEADER.pack(
            _CHUNK_MAGIC, zlib.crc32(payload), len(payload)
        ) + payload
        atomic_write_bytes(self.chunk_path(chunk_id), blob)

    def read_chunk(self, chunk_id: int) -> bytes:
        """Payload of a completed chunk; raises ValueError when invalid."""
        blob = self.chunk_path(chunk_id).read_bytes()
        if len(blob) < _CHUNK_HEADER.size:
            raise ValueError(f"chunk {chunk_id}: truncated header")
        magic, crc, length = _CHUNK_HEADER.unpack_from(blob)
        payload = blob[_CHUNK_HEADER.size:]
        if magic != _CHUNK_MAGIC or len(payload) != length:
            raise ValueError(f"chunk {chunk_id}: bad magic/length")
        if zlib.crc32(payload) != crc:
            raise ValueError(f"chunk {chunk_id}: CRC mismatch")
        return payload

    # -- manifest ----------------------------------------------------------
    def save(self, manifest: CampaignManifest) -> None:
        self.workdir.mkdir(parents=True, exist_ok=True)
        if _TRACER.enabled:
            with Span(_TRACER, "campaign.checkpoint", "resilience",
                      {"completed": len(manifest.completed)}):
                atomic_write_json(self.manifest_path, manifest.to_dict())
        else:
            atomic_write_json(self.manifest_path, manifest.to_dict())
        self._since_save = 0

    def load(self) -> CampaignManifest | None:
        if not self.manifest_path.exists():
            return None
        with open(self.manifest_path) as f:
            return CampaignManifest.from_dict(json.load(f))

    def record(
        self,
        manifest: CampaignManifest,
        chunk_id: int,
        payload: bytes,
        rank: int,
        write: bool = True,
    ) -> None:
        """Fold one completed chunk into the manifest (and persist it).

        Pass ``write=False`` when the chunk file was already written —
        e.g. by a verified write-retry loop that must not redo I/O.
        """
        if write:
            self.write_chunk(chunk_id, payload)
        manifest.completed[chunk_id] = {
            "digest": payload_digest(payload),
            "nbytes": len(payload),
            "rank": rank,
        }
        manifest.rank_progress[rank] = manifest.rank_progress.get(rank, 0) + 1
        self._since_save += 1
        if self._since_save >= self.every:
            self.save(manifest)

    # -- restart -----------------------------------------------------------
    def recover(self, fingerprint: str,
                total_chunks: int) -> CampaignManifest:
        """Reconstruct progress from disk for a resume.

        The manifest (if readable) supplies identity and rank progress;
        completion state is rebuilt by verifying every chunk file, so a
        stale manifest under-reports nothing and a torn chunk file is
        silently redone rather than trusted.
        """
        manifest = None
        try:
            manifest = self.load()
        except (ValueError, json.JSONDecodeError):
            manifest = None  # torn/old manifest: fall back to the scan
        if manifest is not None and manifest.fingerprint != fingerprint:
            raise ValueError(
                "resume fingerprint mismatch: the campaign directory holds "
                f"{manifest.fingerprint[:12]}…, this run is {fingerprint[:12]}… "
                "(different data, method or chunking)"
            )
        fresh = CampaignManifest(
            fingerprint=fingerprint, total_chunks=total_chunks
        )
        if manifest is not None:
            fresh.rank_progress = dict(manifest.rank_progress)
            fresh.context_digests = dict(manifest.context_digests)
        prior = manifest.completed if manifest is not None else {}
        if self.chunk_dir.exists():
            for path in sorted(self.chunk_dir.glob("chunk_*.bin")):
                try:
                    chunk_id = int(path.stem.split("_")[1])
                except (IndexError, ValueError):
                    continue
                if chunk_id >= total_chunks:
                    continue
                try:
                    payload = self.read_chunk(chunk_id)
                except (OSError, ValueError):
                    continue  # torn or corrupt: will be recompressed
                entry = prior.get(chunk_id, {})
                fresh.completed[chunk_id] = {
                    "digest": payload_digest(payload),
                    "nbytes": len(payload),
                    "rank": int(entry.get("rank", -1)),
                }
        return fresh
