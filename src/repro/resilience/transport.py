"""Faulty and self-verifying wrappers around the BP write path.

:class:`FaultyTransport` models the partial-I/O-failure regime: writes
through it may transiently error (``transport`` faults) or silently
bit-flip the payload (``corrupt`` faults) before it reaches the
:class:`~repro.io.engine.BPWriter`.  Corruption is *silent* at the
transport — exactly like a DMA/network flip — and becomes detectable
only because the reduced payload carries a checksum.

:class:`VerifiedWriter` is the recovery side: every ``put_reduced`` is
followed by a CRC read-back (via ``BPWriter.stored_crc``); a mismatch
raises :class:`~repro.resilience.errors.CorruptPayloadFault` and the
write is retried under the policy.  The pair gives campaigns an
end-to-end integrity guarantee over an unreliable transport.
"""

from __future__ import annotations

import zlib

from repro.resilience.errors import CorruptPayloadFault, TransportFault
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import RetryPolicy, retry_call


class FaultyTransport:
    """Delegates to a BP writer, injecting transport faults on the way."""

    def __init__(self, writer, injector: FaultInjector | FaultPlan) -> None:
        if isinstance(injector, FaultPlan):
            injector = FaultInjector(injector)
        self.writer = writer
        self.injector = injector

    def put(self, name, data, rank=0, operator="none", compressor=None):
        site = f"io.put.{name}"
        if self.injector.draw("transport", site):
            raise TransportFault(site, "simulated write failure")
        return self.writer.put(
            name, data, rank=rank, operator=operator, compressor=compressor
        )

    def put_reduced(self, name, payload, shape, dtype, operator, rank=0):
        site = f"io.put_reduced.{name}"
        if self.injector.draw("transport", site):
            raise TransportFault(site, "simulated write failure")
        corrupted = self.injector.corrupt(payload, site)
        return self.writer.put_reduced(
            name, corrupted if corrupted is not None else payload,
            shape, dtype, operator, rank=rank,
        )

    def stored_crc(self, name, rank=0):
        return self.writer.stored_crc(name, rank=rank)

    def close(self):
        return self.writer.close()


class VerifiedWriter:
    """Write-then-verify-then-retry layer over a (possibly faulty) writer.

    ``writer`` needs ``put_reduced`` and ``stored_crc`` — either a plain
    :class:`~repro.io.engine.BPWriter` or a :class:`FaultyTransport`.
    """

    def __init__(self, writer, policy: RetryPolicy | None = None,
                 sleep=None) -> None:
        self.writer = writer
        self.policy = policy or RetryPolicy()
        self._sleep = sleep

    def put_reduced(self, name, payload, shape, dtype, operator, rank=0):
        expected = zlib.crc32(payload)
        site = f"io.verified_put.{name}"

        def attempt():
            self.writer.put_reduced(
                name, payload, shape, dtype, operator, rank=rank
            )
            stored = self.writer.stored_crc(name, rank=rank)
            if stored != expected:
                raise CorruptPayloadFault(
                    site,
                    f"stored CRC {stored:#010x} != expected {expected:#010x}",
                )

        retry_call(attempt, self.policy, site=site, sleep=self._sleep)

    def close(self):
        return self.writer.close()
