"""Fault-tolerant, checkpointed scale-out reduction campaigns.

:class:`CampaignRunner` drives the paper's §VII workload shape — N
ranks reducing a domain chunk-by-chunk into a BP output — on the
in-process MPI substrate (:mod:`repro.mpi_sim`), hardened end to end:

* every rank's adapter is wrapped ``FaultyAdapter → ResilientAdapter``,
  so injected device-batch failures and driver timeouts are retried
  with deterministic backoff, and a persistently failing device demotes
  to the serial adapter (graceful degradation);
* chunk payloads reach disk through a write → read-back → compare loop,
  so silently corrupted payloads are detected by checksum and rewritten;
* completed chunks and a campaign manifest are persisted atomically
  (:mod:`repro.resilience.checkpoint`); an interrupted campaign —
  injected kill, rank losses, a real crash — resumes with
  ``run(resume=True)`` and never recompresses a finished chunk;
* ranks listed in the plan drop out mid-run; survivors adopt their
  remaining chunks from the shared work queue (zero data loss).

Because every adapter produces bit-identical streams and final assembly
orders chunks by id, the reduced output of an interrupted-and-resumed
campaign is **byte-identical** to an uninterrupted run — asserted by
digest equality in the test suite.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.adapters.base import get_adapter
from repro.io.engine import BPWriter
from repro.mpi_sim import RankDropout, run_ranks
from repro.resilience.adapter import FaultyAdapter, ResilientAdapter
from repro.resilience.checkpoint import (
    CampaignManifest,
    CheckpointManager,
    cmm_digest,
    payload_digest,
)
from repro.resilience.errors import (
    CampaignKilled,
    CorruptPayloadFault,
    ResilienceExhausted,
    TransportFault,
)
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import RetryPolicy, retry_call
from repro.trace.metrics import REGISTRY as _METRICS
from repro.trace.tracer import Span, TRACER as _TRACER


def _default_compressor(adapter):
    from repro.core.config import Config, ErrorMode
    from repro.compressors.mgard.compressor import MGARDX

    return MGARDX(Config(error_bound=1e-3, error_mode=ErrorMode.REL),
                  adapter=adapter)


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    total_chunks: int
    resumed_chunks: int
    dropped_ranks: list[int]
    faults_injected: int
    retries: int
    output_path: Path
    output_digest: str
    rank_progress: dict[int, int] = field(default_factory=dict)

    @property
    def completed_this_run(self) -> int:
        return self.total_chunks - self.resumed_chunks


class CampaignRunner:
    """Run a chunked reduction campaign with faults, retries and restart.

    Parameters
    ----------
    data:
        Array to reduce; chunked along axis 0.
    workdir:
        Campaign directory (checkpoints + final output live here).
    make_compressor:
        ``callable(adapter) -> compressor``; defaults to MGARD-X at
        rel-1e-3.  Called once per rank so each rank owns its contexts.
    method:
        Operator tag recorded in the BP output (and the fingerprint).
    ranks:
        Simulated rank count (threads via :func:`repro.mpi_sim.run_ranks`).
    chunk_elems:
        Elements along axis 0 per chunk.
    adapter_family:
        Backend each rank starts on (demotion target is always serial).
    plan:
        Optional :class:`FaultPlan`; ``None`` runs fault-free (the
        resilience machinery still guards against real failures).
    policy:
        Retry budget/backoff for device calls and chunk stores.
    checkpoint_every:
        Manifest save cadence in completed chunks (chunk payloads are
        always persisted immediately and atomically).
    sleep:
        Backoff sleeper passed through to retry loops (tests: no-op).
    """

    def __init__(
        self,
        data: np.ndarray,
        workdir,
        make_compressor=None,
        method: str = "mgard-x",
        ranks: int = 4,
        chunk_elems: int = 16,
        adapter_family: str = "serial",
        plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        checkpoint_every: int = 4,
        num_aggregators: int = 1,
        timeout: float = 300.0,
        sleep=None,
    ) -> None:
        if ranks < 1:
            raise ValueError("need at least one rank")
        if chunk_elems < 1:
            raise ValueError("chunk_elems must be >= 1")
        self.data = np.ascontiguousarray(data)
        if self.data.ndim < 1 or self.data.shape[0] < 1:
            raise ValueError("data must have a non-empty leading axis")
        self.workdir = Path(workdir)
        self.make_compressor = make_compressor or _default_compressor
        self.method = method
        self.ranks = ranks
        self.chunk_elems = chunk_elems
        self.adapter_family = adapter_family
        self.plan = plan
        self.policy = policy or RetryPolicy()
        self.checkpoint = CheckpointManager(self.workdir, every=checkpoint_every)
        self.num_aggregators = num_aggregators
        self.timeout = timeout
        self._sleep = sleep

    # -- chunking ----------------------------------------------------------
    def chunk_bounds(self) -> list[tuple[int, int]]:
        n0 = self.data.shape[0]
        return [
            (start, min(start + self.chunk_elems, n0))
            for start in range(0, n0, self.chunk_elems)
        ]

    @property
    def total_chunks(self) -> int:
        return len(self.chunk_bounds())

    def fingerprint(self) -> str:
        """Campaign identity: same data + method + chunking ⇒ same value.

        Deliberately excludes the rank count and fault plan — a resume
        may use different parallelism or fault schedule and must still
        produce identical bytes.
        """
        h = hashlib.sha256()
        h.update(self.data.tobytes())
        h.update(str(self.data.shape).encode())
        h.update(np.dtype(self.data.dtype).str.encode())
        h.update(f":{self.method}:{self.chunk_elems}".encode())
        return h.hexdigest()

    # -- chunk persistence with corruption detection -----------------------
    def _store_chunk(self, injector: FaultInjector | None,
                     chunk_id: int, payload: bytes) -> None:
        """Write one chunk durably, detecting in-transit corruption.

        The injected corruption is *silent* (the corrupted bytes get a
        self-consistent CRC header, as a DMA flip would); detection is
        the read-back comparison against the payload we meant to write.
        """
        site = f"chunk[{chunk_id}]"
        want = payload_digest(payload)

        def attempt():
            outgoing = payload
            if injector is not None:
                if injector.draw("transport", site):
                    raise TransportFault(site, "simulated chunk write failure")
                corrupted = injector.corrupt(payload, site)
                if corrupted is not None:
                    outgoing = corrupted
            self.checkpoint.write_chunk(chunk_id, outgoing)
            stored = self.checkpoint.read_chunk(chunk_id)
            if payload_digest(stored) != want:
                raise CorruptPayloadFault(
                    site, "read-back digest mismatch (payload corrupted "
                          "in transit)"
                )

        retry_call(attempt, self.policy, site=site, sleep=self._sleep)

    # -- the rank program --------------------------------------------------
    def _run_ranks(self, manifest: CampaignManifest,
                   pending: list[int]) -> list:
        bounds = self.chunk_bounds()
        injector = FaultInjector(self.plan) if self.plan is not None else None
        work: queue.Queue[int] = queue.Queue()
        for cid in pending:
            work.put(cid)
        state_lock = threading.Lock()
        stop = threading.Event()
        done_this_run = [0]

        def rank_program(comm):
            base = get_adapter(self.adapter_family)
            inner = base if injector is None else FaultyAdapter(base, injector)
            adapter = ResilientAdapter(
                inner, fallback="serial", policy=self.policy,
                sleep=self._sleep,
            )
            comp = self.make_compressor(adapter)
            my_done = 0
            while not stop.is_set():
                try:
                    cid = work.get_nowait()
                except queue.Empty:
                    break
                if injector is not None and injector.should_drop(
                        comm.rank, my_done):
                    work.put(cid)  # hand the chunk back to the survivors
                    raise RankDropout(comm.rank, "injected drop-out")
                start, end = bounds[cid]
                piece = self.data[start:end]
                if _TRACER.enabled:
                    with Span(_TRACER, "campaign.chunk", "resilience",
                              {"chunk": cid, "rank": comm.rank,
                               "elems": int(piece.shape[0])}):
                        payload = comp.compress(piece)
                else:
                    payload = comp.compress(piece)
                self._store_chunk(injector, cid, payload)
                with state_lock:
                    self.checkpoint.record(
                        manifest, cid, payload, comm.rank, write=False
                    )
                    done_this_run[0] += 1
                    k = done_this_run[0]
                my_done += 1
                if injector is not None and injector.should_kill(k):
                    stop.set()
                    with state_lock:
                        self.checkpoint.save(manifest)
                    raise CampaignKilled(len(manifest.completed))
            cache = getattr(comp, "cache", None)
            if cache is not None:
                with state_lock:
                    manifest.context_digests[comm.rank] = cmm_digest(cache)
            return my_done

        return run_ranks(
            self.ranks, rank_program,
            timeout=self.timeout, tolerate_dropouts=True,
        )

    # -- final assembly ----------------------------------------------------
    def _assemble(self, manifest: CampaignManifest) -> tuple[Path, str]:
        """Write the final BP output from verified chunk files.

        Chunks are emitted strictly in id order regardless of which rank
        produced them, so the output bytes are independent of work
        distribution, drop-outs and interruptions.
        """
        bounds = self.chunk_bounds()
        final_dir = self.workdir / "final"
        writer = BPWriter(final_dir, num_aggregators=self.num_aggregators)
        dtype = self.data.dtype
        for cid, (start, end) in enumerate(bounds):
            payload = self.checkpoint.read_chunk(cid)
            if payload_digest(payload) != manifest.completed[cid]["digest"]:
                raise CorruptPayloadFault(
                    f"chunk[{cid}]", "chunk file does not match manifest digest"
                )
            shape = (end - start,) + self.data.shape[1:]
            writer.put_reduced(
                f"chunk{cid:06d}", payload, shape, dtype, self.method
            )
        writer.close()
        return final_dir, output_digest(final_dir)

    # -- entry point -------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        fp = self.fingerprint()
        total = self.total_chunks
        if resume:
            manifest = self.checkpoint.recover(fp, total)
        else:
            if self.checkpoint.manifest_path.exists():
                raise ValueError(
                    f"{self.workdir} already holds a campaign manifest; "
                    "pass resume=True or use a fresh directory"
                )
            manifest = CampaignManifest(fingerprint=fp, total_chunks=total)
            self.checkpoint.save(manifest)
        resumed = len(manifest.completed)
        if resume and _TRACER.enabled:
            with Span(_TRACER, "campaign.resume", "resilience",
                      {"resumed_chunks": resumed, "total": total}):
                pass
        pending = [c for c in range(total) if c not in manifest.completed]

        faults0 = _faults_total()
        retries0 = _retries_total()
        results: list = []
        if pending:
            try:
                results = self._run_ranks(manifest, pending)
            except RuntimeError as exc:
                if isinstance(exc.__cause__, CampaignKilled):
                    self.checkpoint.save(manifest)
                    raise exc.__cause__ from None
                raise
        self.checkpoint.save(manifest)

        dropped = [r.rank for r in results if isinstance(r, RankDropout)]
        if not manifest.done:
            raise ResilienceExhausted(
                "campaign", self.ranks,
                RankDropout(None, f"{len(dropped)}/{self.ranks} ranks lost, "
                                  f"{total - len(manifest.completed)} chunks "
                                  "unfinished"),
            )
        output_path, digest = self._assemble(manifest)
        return CampaignResult(
            total_chunks=total,
            resumed_chunks=resumed,
            dropped_ranks=sorted(dropped),
            faults_injected=int(_faults_total() - faults0),
            retries=int(_retries_total() - retries0),
            output_path=output_path,
            output_digest=digest,
            rank_progress=dict(manifest.rank_progress),
        )


def _faults_total() -> float:
    return _METRICS.counter("hpdr_faults_injected_total").total()


def _retries_total() -> float:
    return _METRICS.counter("hpdr_retries_total").total()


def output_digest(final_dir) -> str:
    """SHA-256 over the final BP directory's files (sorted by name)."""
    final_dir = Path(final_dir)
    h = hashlib.sha256()
    for path in sorted(final_dir.iterdir()):
        if path.is_file():
            h.update(path.name.encode())
            h.update(path.read_bytes())
    return h.hexdigest()


def reconstruct(workdir, make_compressor=None,
                adapter_family: str = "serial") -> np.ndarray:
    """Decode a completed campaign's output back into one array.

    Reads the final BP directory written by :class:`CampaignRunner`,
    decompresses every chunk with a fresh compressor and concatenates
    along axis 0.
    """
    from repro.io.engine import BPReader

    make_compressor = make_compressor or _default_compressor
    comp = make_compressor(get_adapter(adapter_family))
    reader = BPReader(Path(workdir) / "final")
    pieces = []
    for key in sorted(reader.variables()):
        name = key.split("@")[0]
        pieces.append(reader.get(name, compressor=comp))
    return np.concatenate(pieces, axis=0)
