"""Typed error taxonomy for HPDR-Resilience.

Two families:

* :class:`InjectedFault` subclasses — *simulated* failures raised by the
  fault-injection harness (:mod:`repro.resilience.faults`).  Each
  carries the injection ``kind`` (stable id, also the metrics label) and
  the ``site`` where it fired, so recovery code and tests can match on
  structure rather than message text.
* :class:`ResilienceExhausted` — the *real* terminal error: a retry
  budget ran dry.  It records the site, how many attempts were made and
  the last underlying failure, which is what an operator needs from a
  campaign log.

``RankDropout`` lives in :mod:`repro.mpi_sim` (the communicator must
understand it without importing this package) and is re-exported here.
"""

from __future__ import annotations

from repro.mpi_sim import RankDropout  # noqa: F401  (re-export)


class InjectedFault(RuntimeError):
    """Base class for deterministically injected failures."""

    kind = "fault"
    transient = True

    def __init__(self, site: str = "", detail: str = "") -> None:
        self.site = site
        self.detail = detail
        msg = f"[{self.kind}] injected fault at {site or '<unknown site>'}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class DeviceBatchFault(InjectedFault):
    """A GEM/DEM batch failed on the device (ECC error, kernel abort)."""

    kind = "device_batch"


class AdapterTimeoutFault(InjectedFault):
    """The backend stopped responding transiently (driver hiccup)."""

    kind = "timeout"


class CorruptPayloadFault(InjectedFault):
    """A reduced-chunk payload arrived with a checksum mismatch."""

    kind = "corrupt"


class TransportFault(InjectedFault):
    """A write to the I/O transport failed transiently."""

    kind = "transport"


class CampaignKilled(RuntimeError):
    """The campaign process was killed mid-run (injected hard stop).

    Deliberately *not* an :class:`InjectedFault`: retry engines must
    never catch it — it models SIGKILL, and the only recovery is
    checkpoint/restart via ``CampaignRunner.run(resume=True)``.
    """

    def __init__(self, completed_chunks: int) -> None:
        self.completed_chunks = completed_chunks
        super().__init__(
            f"campaign killed after {completed_chunks} completed chunks"
        )


class ResilienceExhausted(RuntimeError):
    """A retry budget ran out without a successful attempt."""

    def __init__(self, site: str, attempts: int,
                 last_error: BaseException | None = None) -> None:
        self.site = site
        self.attempts = attempts
        self.last_error = last_error
        msg = f"retry budget exhausted at {site!r} after {attempts} attempts"
        if last_error is not None:
            msg += f" (last error: {last_error!r})"
        super().__init__(msg)
