"""Synthetic scientific datasets standing in for Table III.

The paper evaluates on NYX (cosmology, FP32), XGC (fusion plasma, FP64)
and E3SM (climate, FP32).  Those production datasets are not available
offline, so :mod:`repro.data.synthetic` generates spectral/physics-
inspired fields with matching dimensionality, dtype and smoothness
character, and :mod:`repro.data.registry` records the paper's full-size
metadata next to each generator (scaled shapes for laptop runs).
"""

from repro.data.synthetic import (
    gaussian_random_field,
    nyx_like,
    xgc_like,
    e3sm_like,
)
from repro.data.registry import DATASETS, DatasetSpec, get_dataset, load

__all__ = [
    "gaussian_random_field",
    "nyx_like",
    "xgc_like",
    "e3sm_like",
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "load",
]
