"""Spectral synthetic field generators.

Each generator mimics the statistical character that drives compression
behaviour on its production counterpart:

* **NYX** (cosmology baryon density): log-normal transform of a
  Gaussian random field with a power-law spectrum — smooth large-scale
  structure punctuated by sharp high-density filaments, which is why
  MGARD reaches very high ratios at loose bounds but SZ/ZFP remain
  competitive at tight ones.
* **XGC** (gyrokinetic distribution function ``e_f``): near-Maxwellian
  along the two velocity dimensions, turbulent perturbations along the
  field line / poloidal plane — extremely smooth in v-space, which is
  the source of XGC's large compressibility.
* **E3SM** (sea-level pressure ``PSL``): zonal mean profile plus
  planetary waves plus weather-scale noise on a lat/lon grid with a
  time axis.

All generators are deterministic per seed.
"""

from __future__ import annotations

import numpy as np


def gaussian_random_field(
    shape: tuple[int, ...],
    spectral_index: float = -3.0,
    seed: int = 0,
    dtype=np.float64,
) -> np.ndarray:
    """Real Gaussian random field with isotropic power spectrum k^index.

    Unit variance, zero mean.  More negative ``spectral_index`` →
    smoother field.
    """
    if any(n < 1 for n in shape):
        raise ValueError(f"invalid shape {shape}")
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spec = np.fft.rfftn(white)
    kgrids = []
    for i, n in enumerate(shape):
        if i == len(shape) - 1:
            k = np.fft.rfftfreq(n)
        else:
            k = np.fft.fftfreq(n)
        expand = [None] * len(shape)
        expand[i] = slice(None)
        kgrids.append(np.abs(k)[tuple(expand)])
    k2 = sum(kg**2 for kg in kgrids)
    k = np.sqrt(k2)
    kmin = 1.0 / max(shape)
    amp = np.where(k > 0, np.maximum(k, kmin) ** (spectral_index / 2.0), 0.0)
    field = np.fft.irfftn(spec * amp, s=shape, axes=tuple(range(len(shape))))
    std = field.std()
    if std > 0:
        field = field / std
    return field.astype(dtype)


def nyx_like(
    shape: tuple[int, int, int] = (64, 64, 64),
    seed: int = 0,
) -> np.ndarray:
    """NYX-style baryon density: log-normal field, FP32.

    Full-size counterpart: 512³ FP32 (536.8 MB), Table III.
    """
    if len(shape) != 3:
        raise ValueError(f"NYX density is 3-D, got shape {shape}")
    g = gaussian_random_field(shape, spectral_index=-2.2, seed=seed)
    # Log-normal: overdense filaments on a smooth background.
    density = np.exp(1.2 * g)
    density *= 1.0 / density.mean()
    return density.astype(np.float32)


def xgc_like(
    shape: tuple[int, int, int, int] = (4, 16, 1024, 16),
    seed: int = 0,
) -> np.ndarray:
    """XGC-style distribution function ``e_f``: FP64, 4-D.

    Axes mirror the paper's (plane, v_para, mesh node, v_perp) layout;
    full size 8 × 33 × 1 117 528 × 37 (87.3 GB).  Velocity dimensions
    (axes 1 and 3) are near-Maxwellian; spatial structure modulates
    amplitude and temperature.
    """
    if len(shape) != 4:
        raise ValueError(f"XGC e_f is 4-D, got shape {shape}")
    nplane, nvpar, nnode, nvperp = shape
    rng = np.random.default_rng(seed)

    vpar = np.linspace(-3.0, 3.0, nvpar)
    vperp = np.linspace(0.0, 3.0, nvperp)
    # Per (plane, node) plasma parameters, smoothly varying along nodes.
    temp = 1.0 + 0.3 * gaussian_random_field((nplane, nnode), -2.5, seed=seed + 1)
    dens = np.exp(0.5 * gaussian_random_field((nplane, nnode), -2.0, seed=seed + 2))
    flow = 0.4 * gaussian_random_field((nplane, nnode), -2.5, seed=seed + 3)

    temp = np.clip(temp, 0.3, None)
    f = (
        dens[:, None, :, None]
        * np.exp(
            -((vpar[None, :, None, None] - flow[:, None, :, None]) ** 2
              + vperp[None, None, None, :] ** 2)
            / (2.0 * temp[:, None, :, None])
        )
    )
    # Small turbulent perturbation so the field is not exactly separable.
    f *= 1.0 + 0.02 * rng.standard_normal(f.shape)
    return f.astype(np.float64)


def e3sm_like(
    shape: tuple[int, int, int] = (90, 60, 120),
    seed: int = 0,
) -> np.ndarray:
    """E3SM-style sea-level pressure (time, lat, lon): FP32.

    Full size 2880 × 240 × 960 (2.7 GB).  Zonal-mean structure plus
    slowly evolving planetary waves plus weather noise, in Pa around
    101 325.
    """
    if len(shape) != 3:
        raise ValueError(f"E3SM PSL is 3-D (time, lat, lon), got {shape}")
    nt, nlat, nlon = shape
    lat = np.linspace(-np.pi / 2, np.pi / 2, nlat)
    lon = np.linspace(0, 2 * np.pi, nlon, endpoint=False)
    t = np.arange(nt)

    # Subtropical highs / subpolar lows zonal profile.
    zonal = 101325.0 + 1500.0 * np.cos(2 * lat) - 800.0 * np.cos(4 * lat)
    waves = np.zeros((nt, nlat, nlon))
    rng = np.random.default_rng(seed)
    for wavenum, amp in ((3, 400.0), (5, 250.0), (8, 120.0)):
        phase = rng.uniform(0, 2 * np.pi)
        speed = rng.uniform(0.02, 0.1)
        waves += (
            amp
            * np.cos(np.pi * lat)[None, :, None]
            * np.cos(
                wavenum * lon[None, None, :]
                - speed * t[:, None, None]
                + phase
            )
        )
    noise = 150.0 * gaussian_random_field((nt, nlat, nlon), -2.0, seed=seed + 7)
    psl = zonal[None, :, None] + waves + noise
    return psl.astype(np.float32)
