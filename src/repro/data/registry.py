"""Dataset registry mirroring the paper's Table III.

Each entry records the production dataset's metadata (field, full
dimensions, dtype, size) alongside the synthetic generator and the
scaled default shape used in tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.synthetic import e3sm_like, nyx_like, xgc_like


@dataclass(frozen=True)
class DatasetSpec:
    """Table III row + generator."""

    name: str
    field: str
    full_shape: tuple[int, ...]
    dtype: str
    full_size_bytes: int
    generator: Callable[..., np.ndarray]
    default_shape: tuple[int, ...]

    @property
    def full_size_label(self) -> str:
        size = self.full_size_bytes
        for unit in ("B", "KB", "MB", "GB", "TB"):
            if size < 1000:
                return f"{size:.1f} {unit}"
            size /= 1000
        return f"{size:.1f} PB"

    def load(self, shape: tuple[int, ...] | None = None, seed: int = 0) -> np.ndarray:
        return self.generator(shape or self.default_shape, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    "nyx": DatasetSpec(
        name="NYX",
        field="density",
        full_shape=(512, 512, 512),
        dtype="float32",
        full_size_bytes=536_870_912,
        generator=nyx_like,
        default_shape=(64, 64, 64),
    ),
    "xgc": DatasetSpec(
        name="XGC",
        field="e_f",
        full_shape=(8, 33, 1_117_528, 37),
        dtype="float64",
        full_size_bytes=8 * 33 * 1_117_528 * 37 * 8,
        generator=xgc_like,
        default_shape=(4, 16, 1024, 16),
    ),
    "e3sm": DatasetSpec(
        name="E3SM",
        field="PSL",
        full_shape=(2880, 240, 960),
        dtype="float32",
        full_size_bytes=2880 * 240 * 960 * 4,
        generator=e3sm_like,
        default_shape=(90, 60, 120),
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


def load(name: str, shape: tuple[int, ...] | None = None, seed: int = 0) -> np.ndarray:
    """Generate a (scaled) synthetic stand-in for a Table III dataset."""
    return get_dataset(name).load(shape, seed)
