#!/usr/bin/env python
"""Concurrent clients against the HPDR-Serve micro-batching service.

Analysis-side consumers fire many small reduction requests at once.
Here 16 asyncio clients round-trip mixed-codec payloads through one
:class:`ReductionService`; the service coalesces simultaneous requests
that share a batch key into single GEM launches, and every response is
verified byte-identical to single-shot compression — micro-batching is
a pure throughput optimization, invisible in the bytes.

Run:  python examples/serve_clients.py
"""

import asyncio

import numpy as np

from repro.serve import BatchLimits, CodecSpec, ReductionService, ServiceConfig

CLIENTS = 16
REQUESTS_PER_CLIENT = 4
SPECS = [CodecSpec("zfp-x", rate=8.0), CodecSpec("huffman-x"),
         CodecSpec("lz4")]


def payload_for(spec: CodecSpec, rng) -> np.ndarray:
    data = rng.standard_normal((16, 16)).astype(np.float32)
    if spec.name == "huffman-x":
        data = (data * 4).astype(np.int64).astype(np.float32)
    return np.ascontiguousarray(data)


async def one_client(idx: int, svc, payloads, want) -> int:
    """Closed loop: compress, decompress, verify, repeat."""
    mismatches = 0
    for i in range(REQUESTS_PER_CLIENT):
        spec = SPECS[(idx + i) % len(SPECS)]
        data = payloads[spec.key()]
        blob = await svc.compress(spec, data)
        back = await svc.decompress(spec, blob)
        if blob != want[spec.key()]:
            mismatches += 1
        if np.asarray(back).shape != data.shape:
            mismatches += 1
    return mismatches


async def main() -> None:
    rng = np.random.default_rng(7)
    payloads = {s.key(): payload_for(s, rng) for s in SPECS}
    # Single-shot reference bytes: the service must reproduce these
    # exactly, however it batches.
    want = {s.key(): s.build().compress(payloads[s.key()]) for s in SPECS}

    cfg = ServiceConfig(limits=BatchLimits(max_batch=16, max_latency_s=0.002))
    async with ReductionService(cfg) as svc:
        print(f"{CLIENTS} concurrent clients x {REQUESTS_PER_CLIENT} "
              f"round-trips, codecs {[s.name for s in SPECS]}...")
        mismatches = sum(await asyncio.gather(
            *(one_client(i, svc, payloads, want) for i in range(CLIENTS))
        ))
        stats = svc.stats.snapshot()

    total = CLIENTS * REQUESTS_PER_CLIENT * 2  # compress + decompress
    print(f"completed {stats['completed']}/{total} requests in "
          f"{stats['batches']} batches "
          f"(mean batch size {stats['mean_batch_size']:.1f}, "
          f"p95 {stats['p95_ms']:.2f} ms)")
    print(f"byte-identity vs single-shot: "
          f"{'OK' if mismatches == 0 else f'{mismatches} MISMATCHES'}")
    assert mismatches == 0
    assert stats["completed"] == total
    assert stats["errors"] == 0
    # Concurrency must actually coalesce — that is the point of serving.
    assert stats["mean_batch_size"] > 1.0


if __name__ == "__main__":
    asyncio.run(main())
