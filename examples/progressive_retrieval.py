#!/usr/bin/env python
"""Progressive data retrieval via MGARD refactoring.

A major motivation for multilevel reduction (the paper's refs [23-25]):
write once, then let each reader pull only the bytes its analysis
accuracy requires.  This example refactors an E3SM-style pressure field
into coarse-to-fine substreams and shows the bytes-vs-error trade-off of
retrieving growing prefixes.

Run:  python examples/progressive_retrieval.py
"""

import numpy as np

from repro import MGARDRefactor
from repro.data import e3sm_like


def main() -> None:
    data = e3sm_like((16, 48, 96), seed=11).astype(np.float64)
    print(f"dataset: E3SM-like PSL {data.shape}, {data.nbytes/1e6:.2f} MB\n")

    refactorer = MGARDRefactor(precision=1e-7)
    refactored = refactorer.refactor(data)
    total = refactored.total_bytes
    print(f"refactored into {refactored.num_levels} substreams, "
          f"{total/1e6:.2f} MB total\n")

    print(f"{'levels':>6} {'bytes read':>12} {'% of total':>10} "
          f"{'max error':>12} {'rel error':>10}")
    vr = float(np.ptp(data))
    for k in range(1, refactored.num_levels + 1):
        approx = refactorer.retrieve(refactored, num_levels=k)
        err = float(np.max(np.abs(approx - data)))
        nbytes = refactored.prefix_bytes(k)
        print(f"{k:>6} {nbytes:>12,} {100*nbytes/total:>9.1f}% "
              f"{err:>12.3e} {err/vr:>10.2e}")

    # Error-targeted retrieval: how many bytes does 1% accuracy cost?
    target = 0.01 * vr
    k, nbytes = refactorer.bytes_for(refactored, target)
    print(f"\nfor a {target:.3e} error target the reader needs "
          f"{k} substreams = {nbytes/1e6:.2f} MB "
          f"({100*nbytes/total:.0f}% of the stored bytes)")


if __name__ == "__main__":
    main()
