#!/usr/bin/env python
"""Portability across processor architectures (paper Section II-B).

The scenario the paper motivates: a simulation compresses its output on
one system's GPUs; collaborators must reconstruct it on *different*
hardware — other GPU vendors, or plain CPUs — with a guarantee.

This example compresses an XGC-style fusion dataset with all three HPDR
pipelines on every backend and checks the streams are byte-identical,
then cross-decodes each stream on every other backend.

Run:  python examples/portability.py
"""

import itertools

import numpy as np

from repro import (
    Config,
    ErrorMode,
    HuffmanX,
    MGARDX,
    ZFPX,
    get_adapter,
    rate_for_error_bound,
)
from repro.data import xgc_like

FAMILIES = ["serial", "openmp", "cuda", "hip"]


def main() -> None:
    data = xgc_like((2, 16, 256, 16), seed=7)
    print(f"dataset: XGC-like e_f {data.shape}, {data.dtype}, "
          f"{data.nbytes/1e6:.1f} MB\n")

    config = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    zfp_rate = rate_for_error_bound(config.error_bound, data.dtype, data.ndim)
    pipelines = {
        "MGARD-X": lambda fam: MGARDX(config, adapter=get_adapter(fam)),
        "ZFP-X": lambda fam: ZFPX(rate=zfp_rate, adapter=get_adapter(fam)),
        "Huffman-X": lambda fam: HuffmanX(adapter=get_adapter(fam)),
    }

    for name, factory in pipelines.items():
        # Identical bitstreams from every backend.
        blobs = {fam: factory(fam).compress(data) for fam in FAMILIES}
        reference = blobs["serial"]
        identical = all(b == reference for b in blobs.values())
        print(f"{name}: {len(reference)/1e6:.2f} MB, "
              f"bit-identical across {len(FAMILIES)} backends: {identical}")
        assert identical

        # Cross-decode: compress on A, reconstruct on B.
        failures = 0
        for src, dst in itertools.permutations(FAMILIES, 2):
            restored = factory(dst).decompress(blobs[src])
            restored = np.asarray(restored).reshape(data.shape)
            if name == "Huffman-X":
                ok = np.array_equal(restored, data)
            else:
                # MGARD guarantees the bound outright; fixed-rate ZFP
                # targets it heuristically (a few-x is acceptable).
                slack = 1.01 if name == "MGARD-X" else 8.0
                bound = config.error_bound * float(np.ptp(data))
                ok = np.max(np.abs(restored - data)) <= bound * slack
            failures += 0 if ok else 1
        pairs = len(FAMILIES) * (len(FAMILIES) - 1)
        print(f"  cross-decode: {pairs - failures}/{pairs} backend pairs OK")
        assert failures == 0
    print("\nEvery stream reconstructs on every backend — data written "
          "today stays readable on tomorrow's architecture.")


if __name__ == "__main__":
    main()
