#!/usr/bin/env python
"""Surviving faults: an injected-failure campaign with checkpoint/restart.

At the paper's §VII scale (1,024 Frontier nodes for hours) faults are
routine, so this example runs a reduction campaign under deterministic
fire and shows the recovery machinery end to end:

1. a clean reference run establishes the ground-truth output digest;
2. a seeded :class:`FaultPlan` injects device-batch faults, silent
   payload corruption, a flaky transport, a rank drop-out — and kills
   the whole campaign after a few chunks (a simulated SIGKILL);
3. ``run(resume=True)`` restarts from the checkpoint, never
   recompresses a finished chunk, and the final output is
   **byte-identical** to the uninterrupted run;
4. the always-on metrics show every injected fault was recovered.

Run:  python examples/fault_tolerant_campaign.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.machine import get_system
from repro.resilience import (
    CampaignKilled,
    CampaignRunner,
    FaultPlan,
    reconstruct,
)
from repro.trace.metrics import REGISTRY


def make_runner(data, workdir, plan=None):
    from repro.compressors.zfp.compressor import ZFPX

    return CampaignRunner(
        data,
        workdir,
        make_compressor=lambda adapter: ZFPX(rate=8.0, adapter=adapter),
        method="zfp-x",
        ranks=4,
        chunk_elems=8,
        plan=plan,
        sleep=lambda s: None,  # no wall-clock backoff in an example
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hpdr_resilience_"))
    rng = np.random.default_rng(42)
    data = (np.linspace(0, 1, 64 * 8).reshape(64, 8)
            + rng.normal(0, 0.01, (64, 8))).astype(np.float32)

    # --- what does a real machine's failure rate look like? ----------
    frontier = get_system("frontier")
    exp = frontier.expected_faults(nodes=1024, wall_hours=12.0)
    print(f"Frontier, 1,024 nodes, 12 h: {exp:.2f} node faults expected "
          f"(MTBF {frontier.mtbf_node_hours:.0f} h/node)")

    # --- 1. clean reference run --------------------------------------
    clean = make_runner(data, workdir / "clean").run()
    print(f"\nclean run:   {clean.total_chunks} chunks, "
          f"digest {clean.output_digest[:16]}…")

    # --- 2. campaign under fire, killed mid-run ----------------------
    plan = FaultPlan(seed=3, device_batch_rate=0.2, corrupt_rate=0.2,
                     transport_rate=0.1, kill_after_chunks=3)
    f0 = REGISTRY.counter("hpdr_faults_injected_total").total()
    r0 = REGISTRY.counter("hpdr_retries_total").total()
    try:
        make_runner(data, workdir / "faulty", plan=plan).run()
        raise AssertionError("the kill schedule should have fired")
    except CampaignKilled as kill:
        print(f"faulty run:  killed after {kill.completed_chunks} chunks "
              f"(checkpoint on disk)")

    # --- 3. resume: continued faults, no kill ------------------------
    resume_plan = FaultPlan(seed=3, device_batch_rate=0.2, corrupt_rate=0.2,
                            transport_rate=0.1)
    res = make_runner(data, workdir / "faulty", plan=resume_plan).run(
        resume=True
    )
    print(f"resumed run: {res.resumed_chunks} chunks adopted from the "
          f"checkpoint, {res.completed_this_run} recompressed")
    print(f"             digest {res.output_digest[:16]}…")
    assert res.resumed_chunks >= 3          # nothing finished was redone
    assert res.output_digest == clean.output_digest
    print("resumed output is BYTE-IDENTICAL to the uninterrupted run")

    # --- 4. the ledger: every injected fault was recovered -----------
    faults = REGISTRY.counter("hpdr_faults_injected_total").total() - f0
    retries = REGISTRY.counter("hpdr_retries_total").total() - r0
    print(f"\nfaults injected: {faults}, recovery re-attempts: {retries}")
    assert faults > 0, "the plan should have injected something"

    # and the array itself round-trips within the ZFP rate-8 tolerance
    from repro.compressors.zfp.compressor import ZFPX

    out = reconstruct(workdir / "faulty",
                      make_compressor=lambda a: ZFPX(rate=8.0, adapter=a))
    assert out.shape == data.shape
    assert float(np.abs(out - data).max()) < 0.1
    print(f"reconstructed field max deviation: "
          f"{float(np.abs(out - data).max()):.3e} (rate-8 ZFP)")

    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
