#!/usr/bin/env python
"""Quickstart: error-bounded compression of a scientific field with HPDR.

Compresses a synthetic NYX-style cosmology density field with MGARD-X
under a relative error bound, verifies the bound, and shows the same
bitstream decoding identically on a different backend — the framework's
portability guarantee.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Config, ErrorMode, MGARDX, get_adapter
from repro.data import nyx_like


def main() -> None:
    # 1. A scientific dataset: 64^3 NYX-like baryon density (FP32).
    data = nyx_like((64, 64, 64), seed=42)
    print(f"dataset: NYX-like density {data.shape}, {data.dtype}, "
          f"{data.nbytes/1e6:.1f} MB")

    # 2. Configure an error-bounded compressor: the reconstruction may
    #    deviate by at most 0.1% of the data's value range.
    config = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    compressor = MGARDX(config, adapter=get_adapter("cuda"))

    # 3. Compress.
    blob = compressor.compress(data)
    ratio = compressor.compression_ratio(data, blob)
    print(f"compressed: {len(blob)/1e6:.2f} MB  (ratio {ratio:.1f}x)")

    # 4. Decompress on a *different* backend: HPDR streams are portable
    #    across processor architectures.
    decompressor = MGARDX(config, adapter=get_adapter("openmp"))
    restored = decompressor.decompress(blob)

    # 5. Verify the error bound.
    bound = config.error_bound * float(np.ptp(data))
    max_err = float(np.max(np.abs(restored - data)))
    print(f"max error: {max_err:.3e}  (bound {bound:.3e})  "
          f"=> {'OK' if max_err <= bound else 'VIOLATED'}")
    assert max_err <= bound

    # 6. Second compression of the same shape reuses the cached context
    #    (the CMM): no hierarchy rebuild, no buffer reallocation.
    compressor.compress(data)
    print(f"context cache: {compressor.cache.hits} hits, "
          f"{compressor.cache.misses} misses")


if __name__ == "__main__":
    main()
