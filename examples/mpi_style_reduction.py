#!/usr/bin/env python
"""Rank-decomposed reduction, MPI style.

How the paper's I/O evaluation drives HPDR: each MPI rank owns a slab of
the global field, reduces it locally on its GPU, and an aggregator rank
collects the compressed blobs into one BP file.  No mpi4py is available
offline, so the rank program runs on the in-process communicator of
:mod:`repro.mpi_sim` — same send/recv/scatter/gather surface.

Run:  python examples/mpi_style_reduction.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Config, ErrorMode, MGARDX, get_adapter
from repro.data import nyx_like
from repro.io.engine import BPReader, BPWriter
from repro.mpi_sim import run_ranks

RANKS = 4


def rank_program(comm, workdir: Path, config: Config):
    # Rank 0 "generates" the global field and scatters slabs.
    slabs = None
    if comm.rank == 0:
        global_field = nyx_like((48, 48, 48), seed=9)
        slabs = [np.ascontiguousarray(s)
                 for s in np.array_split(global_field, comm.size, axis=0)]
    my_slab = comm.scatter(slabs, root=0)

    # Local reduction on this rank's (simulated) GPU.
    compressor = MGARDX(config, adapter=get_adapter("cuda"))
    blob = compressor.compress(my_slab)
    local_ratio = my_slab.nbytes / len(blob)

    # Aggregate: rank 0 writes one BP file with every rank's variable.
    gathered = comm.gather((my_slab.shape, blob), root=0)
    stats = None
    if comm.rank == 0:
        writer = BPWriter(workdir / "campaign", num_aggregators=1)
        for rank, (shape, payload) in enumerate(gathered):
            writer.put_reduced("density", payload, shape, np.float32,
                               "mgard-x", rank=rank)
        stats = writer.close()
    stats = comm.bcast(stats, root=0)

    # Every rank verifies its own slab from the shared file.
    reader = BPReader(workdir / "campaign")
    restored = reader.get("density", rank=comm.rank,
                          compressor=MGARDX(config))
    err = float(np.max(np.abs(restored - my_slab)))
    bound = config.error_bound * float(np.ptp(my_slab))
    assert err <= bound, (comm.rank, err, bound)
    return local_ratio, stats


def main() -> None:
    config = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    with tempfile.TemporaryDirectory(prefix="hpdr_mpi_") as tmp:
        results = run_ranks(RANKS, rank_program, Path(tmp), config)
    ratios = [r for r, _ in results]
    stats = results[0][1]
    print(f"{RANKS} ranks reduced a 48^3 NYX-like field:")
    for rank, ratio in enumerate(ratios):
        print(f"  rank {rank}: local ratio {ratio:.1f}x")
    print(f"aggregated BP file: {stats['stored_bytes']/1e3:.1f} KB "
          f"({stats['original_bytes']/stats['stored_bytes']:.1f}x overall)")
    print("every rank verified its slab within the error bound.")


if __name__ == "__main__":
    main()
