#!/usr/bin/env python
"""The Section V pipeline optimization, end to end.

Simulates compressing a 4.3 GB variable on a V100 under the three
pipeline policies of the paper's Fig. 13 (no overlap / fixed chunks /
adaptive chunks), prints the Algorithm 4 chunk schedule, and shows the
roofline model Φ(C) that drives it (Fig. 11).

Run:  python examples/adaptive_pipeline.py
"""

import numpy as np

from repro.core.adaptive import adaptive_schedule, run_adaptive_compression
from repro.core.pipeline import ReductionPipeline, chunk_sizes_for
from repro.machine.device import SimDevice
from repro.machine.engine import Simulator
from repro.perf.models import kernel_model
from repro.perf.roofline import fit_roofline, profile_points

GB = int(1e9)
MB = int(1e6)
TOTAL = int(4.3 * GB)


def fresh():
    sim = Simulator()
    return SimDevice(sim, "V100")


def main() -> None:
    model = kernel_model("mgard-x", "V100", error_bound=1e-2)

    # --- Fig. 11: profile + fit the roofline model ------------------
    chunks = np.array([4, 8, 16, 32, 64, 128, 256, 512]) * MB
    c, p = profile_points(model.phi, chunks)
    fit = fit_roofline(c, p)
    print("Roofline model Φ(C) for MGARD-X on V100 (eb=1e-2):")
    print(f"  plateau γ = {fit.gamma/1e9:.1f} GB/s, "
          f"saturation at C = {fit.c_threshold/1e6:.0f} MB")
    for chunk in (8 * MB, 32 * MB, 128 * MB):
        print(f"  Φ({chunk/1e6:>5.0f} MB) = {fit.phi(chunk)/1e9:5.1f} GB/s")

    # --- Algorithm 4: the adaptive chunk schedule --------------------
    sizes = adaptive_schedule(TOTAL, model, ratio=10)
    print(f"\nAdaptive schedule for {TOTAL/1e9:.1f} GB "
          f"({len(sizes)} chunks):")
    print("  " + " -> ".join(f"{s/1e6:.0f}MB" for s in sizes))

    # --- Fig. 13: the three pipeline policies ------------------------
    print("\nEnd-to-end pipeline comparison (simulated V100):")
    none = ReductionPipeline(
        fresh(), model, overlapped=False, context_cached=False
    ).run_compression(chunk_sizes_for(TOTAL, 2 * GB), ratio=10)
    fixed = ReductionPipeline(fresh(), model).run_compression(
        chunk_sizes_for(TOTAL, 100 * MB), ratio=10
    )
    adaptive = run_adaptive_compression(fresh(), model, TOTAL, ratio=10)
    for label, res in (("none", none), ("fixed 100MB", fixed),
                       ("adaptive", adaptive)):
        print(f"  {label:<12} {res.throughput/1e9:5.1f} GB/s   "
              f"copy-time hidden: {100*res.hidden_copy_ratio:4.1f}%")
    print(f"\n  fixed vs none:     {fixed.throughput/none.throughput:.2f}x "
          "(paper: up to 2.1x for MGARD)")
    print(f"  adaptive vs fixed: {adaptive.throughput/fixed.throughput:.2f}x "
          "(paper: up to 1.3x)")


if __name__ == "__main__":
    main()
