#!/usr/bin/env python
"""Accelerating a simulation campaign's I/O with HPDR + the BP layer.

An E3SM-style climate model writes sea-level-pressure snapshots from
several ranks every "simulated month".  The example writes the campaign
twice — raw and MGARD-X-reduced — through the ADIOS2-like BP engine
(real files on disk), compares sizes, verifies every snapshot's error
bound on read-back, and then projects the same workload onto Frontier
at 1,024 nodes with the calibrated simulator (the paper's Fig. 17).

Run:  python examples/campaign_io.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import Config, ErrorMode, MGARDX
from repro.bench.methods import method_at_scale
from repro.data import e3sm_like
from repro.io.engine import BPReader, BPWriter
from repro.io.parallel import weak_scaling_io
from repro.machine.topology import FRONTIER

RANKS = 4
MONTHS = 3


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hpdr_campaign_"))
    config = Config(error_bound=1e-3, error_mode=ErrorMode.REL)

    # --- write the campaign, raw and reduced -------------------------
    snapshots = {
        (rank, month): e3sm_like((8, 48, 96), seed=rank * 100 + month)
        for rank in range(RANKS)
        for month in range(MONTHS)
    }

    raw_writer = BPWriter(workdir / "raw", num_aggregators=2)
    red_writer = BPWriter(workdir / "reduced", num_aggregators=2)
    for (rank, month), psl in snapshots.items():
        raw_writer.put(f"PSL.m{month}", psl, rank=rank)
        red_writer.put(f"PSL.m{month}", psl, rank=rank,
                       operator="mgard-x", compressor=MGARDX(config))
    raw_stats = raw_writer.close()
    red_stats = red_writer.close()

    print(f"campaign: {RANKS} ranks x {MONTHS} months of E3SM-like PSL")
    print(f"raw size:     {raw_stats['stored_bytes']/1e6:8.2f} MB")
    print(f"reduced size: {red_stats['stored_bytes']/1e6:8.2f} MB "
          f"({raw_stats['original_bytes']/red_stats['stored_bytes']:.1f}x)")

    # --- read back and verify every snapshot -------------------------
    reader = BPReader(workdir / "reduced")
    worst = 0.0
    for (rank, month), original in snapshots.items():
        restored = reader.get(f"PSL.m{month}", rank=rank,
                              compressor=MGARDX(config))
        rel = float(np.max(np.abs(restored - original)) / np.ptp(original))
        worst = max(worst, rel)
    print(f"worst relative error on read-back: {worst:.2e} "
          f"(bound {config.error_bound:.0e}) "
          f"=> {'OK' if worst <= config.error_bound else 'VIOLATED'}")
    assert worst <= config.error_bound

    # --- project onto Frontier at scale (Fig. 17) --------------------
    ratio = raw_stats["original_bytes"] / red_stats["stored_bytes"]
    method = method_at_scale("mgard-x", ratio=ratio, error_bound=1e-3)
    res = weak_scaling_io(FRONTIER, [1024], method,
                          bytes_per_gpu=int(7.5e9))[0]
    print(f"\nprojected to Frontier, 1,024 nodes, 7.5 GB/GPU "
          f"(measured ratio {ratio:.1f}x):")
    print(f"  write: {res.write_time_raw:6.1f} s raw -> "
          f"{res.write_time:5.1f} s reduced  ({res.write_speedup:.1f}x)")
    print(f"  read:  {res.read_time_raw:6.1f} s raw -> "
          f"{res.read_time:5.1f} s reduced  ({res.read_speedup:.1f}x)")

    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
