#!/usr/bin/env python
"""Progressive HPGX archives: coarse preview, then the exact field.

``repro.progressive`` turns one MGARD-X reduction into an archive whose
byte *prefixes* are useful: a reader with a loose error budget fetches a
few hundred bytes, a reader that needs the exact field fetches them all
and gets bytes identical to one-shot ``decompress``.  This example
writes an E3SM-style pressure field once, prints the retrievable
frontier (the table in ``docs/progressive.md``), retrieves a coarse
preview and then refines it — asserting every claim as it goes.

Run:  python examples/progressive_preview.py
"""

import numpy as np

from repro import Config, MGARDX, ProgressiveMGARD, ProgressiveRetriever
from repro.data import e3sm_like


def main() -> None:
    data = e3sm_like((20, 24, 36), seed=7)
    print(f"dataset: E3SM-like PSL {data.shape} {data.dtype}, "
          f"{data.nbytes:,} B raw\n")

    # Write once: refactor into (resolution group x bitplane) segments.
    cfg = Config(error_bound=1e-4)
    codec = ProgressiveMGARD(cfg)
    index, segments = codec.refactor(data)
    from repro.progressive import archive_bytes

    blob = archive_bytes(index, segments)
    total = sum(r.nbytes for r in index.records)
    print(f"refactored into {len(index.records)} segments over "
          f"{index.ngroups} resolution groups, {total:,} B stream "
          f"({len(blob):,} B archive)\n")

    # The retrievable frontier: every point is a (bytes, error) deal a
    # bounded reader can actually get.
    print("| `eps` request | segments | bytes fetched | % of stream "
          "| achieved max error |")
    print("|---|---|---|---|---|")
    retriever = ProgressiveRetriever()
    f64 = data.astype(np.float64)
    for rec in index.frontier():
        eps = rec.error_bound * 1.0001
        approx, report = retriever.retrieve(blob, eps=eps)
        err = float(np.max(np.abs(approx.astype(np.float64) - f64)))
        assert err <= eps, "achieved error must satisfy the request"
        assert abs(err - rec.error_bound) <= 1e-12 * rec.error_bound, \
            "recorded bounds are measured, not estimated"
        print(f"| `{rec.error_bound:.3e}` | {report.segments_fetched}"
              f"/{len(index.records)} | {report.bytes_fetched:,} "
              f"| {100 * report.bytes_fetched / total:.1f}% "
              f"| `{err:.3e}` |")

    # A coarse preview costs a sliver of the stream...
    frontier = index.frontier()
    preview_eps = frontier[min(3, len(frontier) - 2)].error_bound * 1.0001
    preview, report = retriever.retrieve(blob, eps=preview_eps)
    assert report.bytes_fetched < total
    print(f"\npreview at eps={preview_eps:.3e}: "
          f"{report.bytes_fetched:,}/{total:,} B "
          f"({report.fraction_fetched:.1%} of the stream)")

    # ...and refining to the full prefix reproduces the one-shot codec
    # byte for byte.
    full, report = retriever.retrieve(blob)
    oneshot = MGARDX(cfg)
    want = oneshot.decompress(oneshot.compress(data))
    assert full.dtype == want.dtype and full.shape == want.shape
    assert full.tobytes() == want.tobytes()
    assert report.bytes_fetched == total
    print(f"full prefix == one-shot decompress: "
          f"{full.tobytes() == want.tobytes()} "
          f"(floor {index.floor:.3e}, abs bound {index.abs_eb:.3e})")


if __name__ == "__main__":
    main()
