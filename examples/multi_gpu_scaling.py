#!/usr/bin/env python
"""Why context caching decides multi-GPU scalability (paper Fig. 16).

Simulates a Summit node (6x V100 sharing one runtime) compressing 2 GB
per GPU with and without the Context Memory Model.  Without the CMM,
every reduction call allocates its buffers through the shared runtime,
whose serialized allocation path becomes the bottleneck as GPUs are
added.

Run:  python examples/multi_gpu_scaling.py
"""

from repro.bench.methods import method_at_scale
from repro.io.parallel import node_reduction_time
from repro.machine.topology import SUMMIT

GB = int(1e9)
PER_GPU = 2 * GB


def efficiency_curve(method) -> list[float]:
    t1 = node_reduction_time(SUMMIT, method, PER_GPU, num_gpus=1)
    return [
        t1 / node_reduction_time(SUMMIT, method, PER_GPU, num_gpus=g)
        for g in range(1, 7)
    ]


def main() -> None:
    with_cmm = method_at_scale("mgard-x", ratio=20.0)
    without = method_at_scale("mgard-gpu", ratio=20.0)

    print("Weak-scaling efficiency on one Summit node (1.0 = ideal):\n")
    print("GPUs   MGARD-X (CMM)   MGARD-GPU (per-call allocs)")
    eff_x = efficiency_curve(with_cmm)
    eff_g = efficiency_curve(without)
    for g, (ex, eg) in enumerate(zip(eff_x, eff_g), start=1):
        bar_x = "#" * round(20 * ex)
        bar_g = "#" * round(20 * eg)
        print(f"{g:>4}   {ex:5.2f} {bar_x:<20}  {eg:5.2f} {bar_g:<20}")

    avg_x = sum(eff_x[1:]) / len(eff_x[1:])
    avg_g = sum(eff_g[1:]) / len(eff_g[1:])
    print(f"\naverage efficiency: MGARD-X {100*avg_x:.0f}% "
          f"(paper: 96%), MGARD-GPU {100*avg_g:.0f}% (paper: 72%)")
    print("\nThe gap is entirely runtime memory management: the CMM's "
          "hash-map context cache\nmakes the steady state allocation-free, "
          "so nothing serializes on the shared runtime.")


if __name__ == "__main__":
    main()
