#!/usr/bin/env python
"""In-situ streaming reduction of a running simulation.

The paper's motivating scenario: an application produces data
continuously, and reduction must keep pace without re-allocating its
context every step.  Here a toy advection "simulation" emits a field
per step; a :class:`StreamingCompressor` reduces each step as it
appears (contexts reused through the CMM), and the finalized stream is
stepped back out for verification.

Run:  python examples/in_situ_stream.py
"""

import numpy as np

from repro import Config, ErrorMode, MGARDX, StreamingCompressor, StreamingDecompressor


def simulation(n_steps: int, shape=(48, 48)):
    """Toy advected vortex field, one array per 'time step'."""
    x, y = np.meshgrid(*[np.linspace(0, 2 * np.pi, s) for s in shape],
                       indexing="ij")
    for t in range(n_steps):
        phase = 0.3 * t
        yield (np.sin(x + phase) * np.cos(y - 0.5 * phase)
               + 0.05 * np.sin(5 * x + phase)).astype(np.float64)


def main() -> None:
    n_steps = 12
    config = Config(error_bound=1e-3, error_mode=ErrorMode.REL)
    compressor = MGARDX(config)
    stream = StreamingCompressor(compressor)

    print(f"simulating {n_steps} steps, reducing in situ...")
    for t, field in enumerate(simulation(n_steps)):
        nbytes = stream.push(field)
        marker = " (context built)" if t == 0 else ""
        print(f"  step {t:>2}: {field.nbytes/1e3:7.1f} KB -> "
              f"{nbytes/1e3:6.1f} KB{marker}")

    blob = stream.finalize()
    print(f"\nstream: {stream.num_chunks} chunks, overall ratio "
          f"{stream.ratio:.1f}x")
    print(f"context cache: {compressor.cache.hits} hits / "
          f"{compressor.cache.misses} misses "
          f"(steady state is allocation-free)")

    # Read back with random access: only the requested step is decoded.
    reader = StreamingDecompressor(MGARDX(config), blob)
    worst = 0.0
    for t, field in enumerate(simulation(n_steps)):
        restored = reader.chunk(t)
        worst = max(worst, float(np.max(np.abs(restored - field)) / np.ptp(field)))
    print(f"worst relative error across steps: {worst:.2e} "
          f"(bound {config.error_bound:.0e}) "
          f"=> {'OK' if worst <= config.error_bound else 'VIOLATED'}")
    assert worst <= config.error_bound


if __name__ == "__main__":
    main()
