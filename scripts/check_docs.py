#!/usr/bin/env python
"""Docs freshness and link checker (CI: the ``docs`` job).

Two enforcement passes, exit 1 on any finding:

1. **API coverage** — every public module directly under ``src/repro/``
   (subpackage or top-level ``.py``, underscore-prefixed names excluded)
   plus every depth-2 subpackage (``repro.<pkg>.<subpkg>``) must be
   mentioned as ``repro.<dotted name>`` in the *prose* of
   ``docs/api.md``: fenced code blocks are stripped before matching and
   the mention must sit on a word boundary, so an import inside an
   example snippet or a superstring like ``repro.coremost`` does not
   count as documentation.  Adding a subpackage without documenting it
   fails CI.
2. **Markdown links** — every relative link/image target in the repo's
   markdown files must exist on disk (anchors are stripped; external
   ``http(s)``/``mailto`` targets are skipped).

Run locally:  python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
API_DOC = REPO / "docs" / "api.md"

# Markdown files that carry user-facing links worth checking.
MARKDOWN_GLOBS = ["*.md", "docs/*.md"]

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def public_modules() -> list[str]:
    """Public modules under src/repro: top level plus depth-2 subpackages."""
    names = []
    for entry in sorted(SRC.iterdir()):
        if entry.name.startswith("_"):
            continue
        if entry.is_dir() and (entry / "__init__.py").exists():
            names.append(entry.name)
            for sub in sorted(entry.iterdir()):
                if (not sub.name.startswith("_") and sub.is_dir()
                        and (sub / "__init__.py").exists()):
                    names.append(f"{entry.name}.{sub.name}")
        elif entry.suffix == ".py":
            names.append(entry.stem)
    return names


def _strip_fences(text: str) -> str:
    """Remove fenced code blocks: imports in examples aren't docs."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_api_coverage() -> list[str]:
    text = _strip_fences(API_DOC.read_text(encoding="utf-8"))
    problems = []
    for name in public_modules():
        if not re.search(rf"\brepro\.{re.escape(name)}\b", text):
            problems.append(
                f"docs/api.md: public module 'repro.{name}' is undocumented "
                f"(add a prose section or mention before merging; fenced "
                f"code blocks don't count)"
            )
    return problems


def iter_markdown() -> list[Path]:
    files: set[Path] = set()
    for pattern in MARKDOWN_GLOBS:
        files.update(REPO.glob(pattern))
    return sorted(files)


def check_links() -> list[str]:
    problems = []
    for md in iter_markdown():
        text = md.read_text(encoding="utf-8")
        # Drop fenced code blocks: shell/python snippets aren't links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO)
                problems.append(f"{rel}: broken relative link '{target}'")
    return problems


def main() -> int:
    problems = check_api_coverage() + check_links()
    for p in problems:
        print(f"DOCS: {p}")
    if problems:
        print(f"\n{len(problems)} documentation finding(s).")
        return 1
    mods = public_modules()
    print(f"docs OK: {len(mods)} public modules covered in docs/api.md, "
          f"{len(iter_markdown())} markdown files link-checked.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
