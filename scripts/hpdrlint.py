#!/usr/bin/env python
"""hpdrlint CLI — HPDR-Statica static analyzer driver.

Usage:
    PYTHONPATH=src python scripts/hpdrlint.py              # analyze src/repro
    PYTHONPATH=src python scripts/hpdrlint.py path ...     # analyze paths
    ... --packs core,async                                 # subset of packs
    ... --list-rules                                       # rule table by pack
    ... --sarif out.sarif                                  # SARIF 2.1.0 report
    ... --write-baseline                                   # grandfather tree
    ... --max-seconds 10                                   # perf guard

Exit status: 0 when clean, 1 when any non-baselined finding is reported
(CI gates on this), 2 on usage errors.  Suppress a deliberate violation
inline with ``# hpdrlint: disable=HPL001 — reason`` on the offending
line; grandfather a backlog with ``--write-baseline`` (the shipped
baseline is empty and expected to stay that way).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.check.lint import format_findings  # noqa: E402
from repro.check.static import (  # noqa: E402
    ALL_PACKS,
    ALL_RULES,
    RULE_PACKS,
    analyze_paths,
    load_baseline,
    partition_findings,
    write_baseline,
    write_sarif,
)

DEFAULT_BASELINE = REPO_ROOT / ".hpdrlint-baseline.json"


def _usage_error(message: str) -> int:
    print(f"hpdrlint: {message}", file=sys.stderr)
    return 2


def _validate_paths(raw: list[str]) -> list[Path] | int:
    """Resolve CLI path arguments, rejecting anything we cannot lint.

    A non-existent path, a dangling symlink, or a file argument that is
    not ``.py`` is a usage error (exit 2) — silently skipping it would
    report "clean" without analyzing what the caller asked for.
    """
    paths: list[Path] = []
    for arg in raw:
        p = Path(arg)
        if not p.exists():
            if p.is_symlink():
                return _usage_error(
                    f"dangling symlink: {p} -> {p.readlink()}"
                )
            return _usage_error(f"no such path: {p}")
        if p.is_file() and p.suffix != ".py":
            return _usage_error(
                f"not a Python file: {p} (only .py files and "
                f"directories can be analyzed)"
            )
        paths.append(p)
    return paths


def _list_rules() -> None:
    for pack in ALL_PACKS:
        rules = RULE_PACKS[pack]
        print(f"[{pack}]")
        for rule, desc in sorted(rules.items()):
            print(f"  {rule}  {desc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hpdrlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--packs", default=",".join(ALL_PACKS), metavar="P1,P2",
        help=f"comma-separated rule packs (default: all = "
             f"{','.join(ALL_PACKS)})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table grouped by pack",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", default=None,
        help="also write a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file of grandfathered findings (default: "
             ".hpdrlint-baseline.json at the repo root, if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="fail (exit 1) if the analysis takes longer than S seconds",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    packs = [p for p in args.packs.split(",") if p]
    unknown = set(packs) - set(RULE_PACKS)
    if unknown:
        return _usage_error(
            f"unknown pack(s) {sorted(unknown)}; choose from "
            f"{sorted(RULE_PACKS)}"
        )

    if args.paths:
        validated = _validate_paths(args.paths)
        if isinstance(validated, int):
            return validated
        paths = validated
    else:
        paths = [REPO_ROOT / "src" / "repro"]

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE

    start = time.perf_counter()
    result = analyze_paths(paths, packs=packs)
    elapsed = time.perf_counter() - start

    for warning in result.warnings:
        print(f"hpdrlint: warning: {warning}", file=sys.stderr)

    if args.write_baseline:
        write_baseline(baseline_path, result.findings, REPO_ROOT)
        print(
            f"hpdrlint: wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    fresh = result.findings
    known_count = 0
    if baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            return _usage_error(f"cannot read baseline: {exc}")
        fresh, known = partition_findings(result.findings, baseline, REPO_ROOT)
        known_count = len(known)

    if args.sarif:
        rules = {
            rid: desc
            for pack in packs
            for rid, desc in RULE_PACKS[pack].items()
        }
        write_sarif(Path(args.sarif), fresh, rules, REPO_ROOT)

    status = 0
    if fresh:
        print(format_findings(fresh))
        status = 1
    else:
        suffix = f" ({known_count} baselined)" if known_count else ""
        print(f"hpdrlint: clean{suffix} [{elapsed:.2f}s]")

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"hpdrlint: analysis took {elapsed:.2f}s "
            f"(budget {args.max_seconds:.2f}s)",
            file=sys.stderr,
        )
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
