#!/usr/bin/env python
"""hpdrlint CLI — hot-path allocation / kernel-typing linter.

Usage:
    PYTHONPATH=src python scripts/hpdrlint.py            # lint src/repro
    PYTHONPATH=src python scripts/hpdrlint.py path ...   # lint given paths
    ... --list-rules                                     # show rule table

Exit status: 0 when clean, 1 when any finding is reported (CI gates on
this), 2 on usage errors.  Suppress a deliberate violation inline with
``# hpdrlint: disable=HPL001 — reason`` on the offending line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.check.lint import RULES, format_findings, lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hpdrlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    paths = [Path(p) for p in (args.paths or [REPO_ROOT / "src" / "repro"])]
    for p in paths:
        if not p.exists():
            print(f"hpdrlint: no such path: {p}", file=sys.stderr)
            return 2

    findings = lint_paths(paths)
    if findings:
        print(format_findings(findings))
        return 1
    print("hpdrlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
