"""Perf-regression gate: fail CI when wall-clock throughput regresses.

Re-measures codec throughput and compares against the committed
``BENCH_wallclock.json`` record.  A codec whose compress or decompress
MB/s falls more than ``--tolerance`` (default 20%) below the committed
``current`` numbers fails the gate.

Usage::

    PYTHONPATH=src python scripts/perf_gate.py                # enforce
    PYTHONPATH=src python scripts/perf_gate.py --report-only  # never fail
    PYTHONPATH=src python scripts/perf_gate.py --fresh new.json --smoke

``--fresh`` skips re-measurement and gates a pre-computed record (e.g.
the one the CI smoke run just produced) against the committed one.

``--cluster-fresh`` gates an HPDR-Cluster scaling record (produced by
``benchmarks/bench_cluster.py``) against the committed
``BENCH_cluster.json``: per-cell goodput must stay within tolerance and
the *fresh* 4-shard-over-1-shard scaling must stay >=
``--cluster-scaling-min`` (default 1.6x — the cluster's headline
claim).

A record that is present but missing a gated section or cell (wrong
schema, truncated write, stale generator) exits 2 with a message naming
the missing piece — distinct from exit 1, a real measured regression.

``--serve-fresh`` additionally gates an HPDR-Serve record (produced by
``benchmarks/bench_serve.py``) against the committed ``BENCH_serve.json``:
gated cells' req/s must stay within tolerance, the 64-client
micro-batching speedup over single-shot must stay >= ``--serve-min-speedup``
(default 2x — the repo's headline serving claim), and every codec's
direct batch-vs-single *round-trip* speedup (``codec_batch`` in the
record: one ``compress_batch`` + ``decompress_batch`` pair against 64
single-shot round trips) must stay >= ``--codec-batch-min`` (default
2x).  Per-direction speedups are recorded and reported but not gated —
they differ in how much per-item work the batch path can amortize.

``--tune-fresh`` gates an auto-tuner record (produced by
``benchmarks/bench_tune.py``) against ``BENCH_tune.json``: every cell's
tuned-over-default speedup must stay >= ``--tune-min-speedup`` (default
1.0 — learned configs must never lose to the defaults) and at least
``--tune-min-winning`` cells (default 2) must be strictly faster.

Sanitized runs are exempt: ``HPDR_SAN`` deliberately re-executes every
GEM batch in shadow, so throughput under it measures the sanitizer, not
the codecs — the gate refuses to produce (or judge) such numbers and
exits 0 immediately.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
COMMITTED = REPO_ROOT / "BENCH_wallclock.json"
SERVE_COMMITTED = REPO_ROOT / "BENCH_serve.json"
CLUSTER_COMMITTED = REPO_ROOT / "BENCH_cluster.json"
TUNE_COMMITTED = REPO_ROOT / "BENCH_tune.json"

_CODECS = ("huffman", "huffman_openmp", "mgard", "zfp")
_METRICS = ("compress_MBps", "decompress_MBps")

#: serve-grid cells whose throughput is gated against the committed
#: record (the single-shot baseline, the saturated micro-batch cell and
#: the 8-client sweet spot).
_SERVE_CELLS = ("c1_b1", "c8_b8", "c64_b64")

#: cluster scaling-curve cells (shard counts).
_CLUSTER_CELLS = ("s1", "s2", "s4", "s8")


class MissingBenchCell(Exception):
    """A gated record exists but lacks a required section or cell.

    Raised instead of letting a bare ``KeyError`` escape: the gate's
    job is to say *what* is missing and *which* file to regenerate, and
    to exit 2 (malformed input) rather than 1 (measured regression).
    """


def _section(record: dict, name: str, source: str) -> dict:
    """``record[name]`` as a dict, or a diagnosable MissingBenchCell."""
    value = record.get(name)
    if not isinstance(value, dict):
        raise MissingBenchCell(
            f"{source} has no {name!r} section — regenerate it with the "
            f"matching benchmarks/ script"
        )
    return value


def _cell(section: dict, cell: str, source: str) -> dict:
    value = section.get(cell)
    if not isinstance(value, dict):
        raise MissingBenchCell(
            f"{source} is missing gated cell {cell!r} — regenerate it "
            f"with the matching benchmarks/ script"
        )
    return value


def _fmt(cell: dict, name: str, prec: int = 2) -> str:
    """Display form of a cell value; non-numbers print as-is.

    The diagnostic tables must render even for the malformed records
    the compare functions are about to reject with exit 2 — a ``null``
    in the printout is the evidence, not a crash site.
    """
    value = cell.get(name)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    return f"{value:.{prec}f}"


def _metric(cell: dict, name: str, source: str) -> float:
    """``cell[name]`` as a finite number, or a diagnosable MissingBenchCell.

    ``null`` (a generator that recorded a failed measurement), a missing
    key, and a non-numeric value are all schema faults, not regressions:
    they must exit 2 with the offending field named, never surface as a
    raw ``KeyError``/``TypeError`` comparing ``None`` to a float.
    """
    value = cell.get(name)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MissingBenchCell(
            f"{source} has no numeric {name!r} (got {value!r}) — "
            f"regenerate it with the matching benchmarks/ script"
        )
    return float(value)


def compare(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return one failure line per metric below ``(1 - tolerance) * ref``.

    Each line names the exact metric and quantifies the miss two ways:
    the drop relative to the committed record, and the shortfall below
    the tolerance floor — so a red CI run says precisely what regressed
    and by how much, without re-deriving anything from the JSON.
    """
    failures = []
    committed_cur = _section(committed, "current", "committed record")
    fresh_cur = _section(fresh, "current", "fresh record")
    for codec in _CODECS:
        ref = committed_cur.get(codec)
        cur = fresh_cur.get(codec)
        if not isinstance(ref, dict) or not isinstance(cur, dict):
            continue
        for metric in _METRICS:
            ref_v = _metric(ref, metric, f"committed record [{codec}]")
            cur_v = _metric(cur, metric, f"fresh record [{codec}]")
            floor = (1.0 - tolerance) * ref_v
            if cur_v < floor:
                drop = 100.0 * (1.0 - cur_v / ref_v)
                below = 100.0 * (1.0 - cur_v / floor)
                failures.append(
                    f"{codec}.{metric}: {cur_v:.2f} MB/s is "
                    f"{drop:.1f}% below the committed {ref_v:.2f} "
                    f"({below:.1f}% under the {tolerance:.0%}-tolerance "
                    f"floor of {floor:.2f})"
                )
    return failures


def compare_serve(
    committed: dict, fresh: dict, tolerance: float, min_speedup: float,
    codec_batch_min: float = 2.0,
) -> list[str]:
    """Gate the HPDR-Serve record: cell throughput and batching speedups.

    Three checks: (a) each gated cell's req/s must stay within
    ``tolerance`` of the committed record; (b) the headline claim —
    micro-batching (max_batch >= 8) beats the single-shot baseline at 64
    concurrent clients — must hold with at least ``min_speedup`` on the
    *fresh* measurement, not just the committed one; (c) every batched
    codec's direct batch-vs-single speedup must stay >=
    ``codec_batch_min`` in both directions.
    """
    failures = []
    committed_cur = _section(committed, "current", "committed serve record")
    fresh_cur = _section(fresh, "current", "fresh serve record")
    for cell in _SERVE_CELLS:
        ref = _cell(committed_cur, cell, "committed serve record")
        cur = _cell(fresh_cur, cell, "fresh serve record")
        ref_rps = _metric(ref, "rps", f"committed serve record [{cell}]")
        cur_rps = _metric(cur, "rps", f"fresh serve record [{cell}]")
        floor = (1.0 - tolerance) * ref_rps
        if cur_rps < floor:
            drop = 100.0 * (1.0 - cur_rps / ref_rps)
            failures.append(
                f"serve.{cell}.rps: {cur_rps:.1f} req/s is "
                f"{drop:.1f}% below the committed {ref_rps:.1f} "
                f"(floor {floor:.1f} at {tolerance:.0%} tolerance)"
            )
    speedups = fresh.get("speedup_c64", {})
    for name in sorted(speedups):
        speedup = _metric(speedups, name, "fresh serve record [speedup_c64]")
        if speedup < min_speedup:
            failures.append(
                f"serve.speedup_c64.{name}: micro-batching is only "
                f"{speedup:.2f}x over single-shot at 64 clients "
                f"(required >= {min_speedup:.1f}x)"
            )
    for codec, cell in sorted(fresh.get("codec_batch", {}).items()):
        speedup = _metric(cell, "roundtrip_speedup",
                          f"fresh serve record [codec_batch.{codec}]")
        if speedup < codec_batch_min:
            failures.append(
                f"serve.codec_batch.{codec}.roundtrip_speedup: "
                f"batch-{cell.get('batch')} launches are only "
                f"{speedup:.2f}x over single-shot round trips "
                f"(required >= {codec_batch_min:.1f}x)"
            )
    return failures


def compare_cluster(
    committed: dict, fresh: dict, tolerance: float, scaling_min: float,
) -> list[str]:
    """Gate the HPDR-Cluster record: per-cell goodput and scaling.

    Two checks: (a) each shard-count cell's goodput must stay within
    ``tolerance`` of the committed record; (b) the headline claim —
    4 shards beat 1 shard by at least ``scaling_min`` under the fixed
    offered load — must hold on the *fresh* measurement.
    """
    failures = []
    committed_cur = _section(committed, "current", "committed cluster record")
    fresh_cur = _section(fresh, "current", "fresh cluster record")
    for cell in _CLUSTER_CELLS:
        ref = _cell(committed_cur, cell, "committed cluster record")
        cur = _cell(fresh_cur, cell, "fresh cluster record")
        ref_rps = _metric(ref, "rps", f"committed cluster record [{cell}]")
        cur_rps = _metric(cur, "rps", f"fresh cluster record [{cell}]")
        floor = (1.0 - tolerance) * ref_rps
        if cur_rps < floor:
            drop = 100.0 * (1.0 - cur_rps / ref_rps)
            failures.append(
                f"cluster.{cell}.rps: {cur_rps:.1f} req/s is "
                f"{drop:.1f}% below the committed {ref_rps:.1f} "
                f"(floor {floor:.1f} at {tolerance:.0%} tolerance)"
            )
    scaling = _section(fresh, "scaling", "fresh cluster record")
    headline = _metric(scaling, "s4_over_s1",
                       "fresh cluster record [scaling]")
    if headline < scaling_min:
        failures.append(
            f"cluster.scaling.s4_over_s1: 4 shards deliver only "
            f"{headline:.2f}x the 1-shard goodput "
            f"(required >= {scaling_min:.1f}x)"
        )
    return failures


def compare_tune(
    committed: dict, fresh: dict, min_speedup: float = 1.0,
    min_winning_cells: int = 2,
) -> list[str]:
    """Gate the auto-tuner record: tuned must never lose, and must win.

    Two checks on the *fresh* record (produced by
    ``benchmarks/bench_tune.py``): (a) every cell's tuned-over-default
    speedup must be >= ``min_speedup`` (default 1.0 — the tuner's
    fail-open contract: a learned config that cannot beat the defaults
    is discarded at bench time and recorded as exactly 1.0, so anything
    below the floor means the fallback itself broke); (b) at least
    ``min_winning_cells`` cells must be strictly faster than the
    defaults, or the tuner has stopped finding anything at all.  The
    committed record only anchors the cell roster: every committed cell
    must still be measured fresh.
    """
    failures = []
    committed_cur = _section(committed, "current", "committed tune record")
    fresh_cur = _section(fresh, "current", "fresh tune record")
    for cell in sorted(committed_cur):
        _cell(fresh_cur, cell, "fresh tune record")
    winning = 0
    for cell in sorted(fresh_cur):
        speedup = _metric(_cell(fresh_cur, cell, "fresh tune record"),
                          "speedup", f"fresh tune record [{cell}]")
        if speedup >= min_speedup:
            if speedup > 1.0:
                winning += 1
        else:
            failures.append(
                f"tune.{cell}.speedup: tuned config is {speedup:.3f}x the "
                f"defaults (required >= {min_speedup:.2f}x — the tuner must "
                f"fall back to defaults rather than regress)"
            )
    if winning < min_winning_cells:
        failures.append(
            f"tune: only {winning} cell(s) beat the defaults "
            f"(required >= {min_winning_cells} strictly-winning cells)"
        )
    return failures


def write_tune_step_summary(
    fresh: dict, failures: list[str], min_speedup: float
) -> None:
    """Append the tune-gate verdict and per-cell table to the summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Tune gate", ""]
    if failures:
        lines.append(f"**REGRESSION** — {len(failures)} tuning cell(s) "
                     f"out of bounds:")
        lines.append("")
        lines.extend(f"- {f}" for f in failures)
    else:
        winning = sum(
            1 for cell in fresh.get("current", {}).values()
            if isinstance(cell, dict)
            and isinstance(cell.get("speedup"), (int, float))
            and cell["speedup"] > 1.0
        )
        lines.append(f"**OK** — tuned >= {min_speedup:.2f}x defaults on "
                     f"every cell, {winning} cell(s) strictly faster.")
    lines += ["", "| cell | default s | tuned s | speedup | tuned config |",
              "|---|---:|---:|---:|---|"]
    for cell, row in sorted(fresh.get("current", {}).items()):
        if not isinstance(row, dict):
            continue
        knobs = " ".join(f"{k}={v}"
                         for k, v in sorted(row.get("config", {}).items()))
        lines.append(f"| {cell} | {_fmt(row, 'default_s', 4)} "
                     f"| {_fmt(row, 'tuned_s', 4)} "
                     f"| {_fmt(row, 'speedup', 3)}x | {knobs or '-'} |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def write_cluster_step_summary(
    committed: dict, fresh: dict, failures: list[str], scaling_min: float,
) -> None:
    """Append the cluster-gate verdict and scaling table to the summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Cluster gate", ""]
    if failures:
        lines.append(f"**REGRESSION** — {len(failures)} cluster metric(s) "
                     f"out of bounds:")
        lines.append("")
        lines.extend(f"- {f}" for f in failures)
    else:
        scalings = ", ".join(
            f"{k}={v:.2f}x" for k, v in sorted(
                fresh.get("scaling", {}).items())
        )
        lines.append(f"**OK** — cells within tolerance; shard scaling "
                     f"{scalings} (s4_over_s1 floor {scaling_min:.1f}x, "
                     f"{fresh.get('cores', '?')} cores).")
    lines += ["", "| shards | committed req/s | fresh req/s | fresh p95 ms "
                  "| fresh rejected attempts |", "|---|---:|---:|---:|---:|"]
    committed_cur = _section(committed, "current", "committed cluster record")
    fresh_cur = _section(fresh, "current", "fresh cluster record")
    for cell in _CLUSTER_CELLS:
        ref = committed_cur.get(cell)
        cur = fresh_cur.get(cell)
        if not ref or not cur:
            continue
        lines.append(f"| {cell} | {ref['rps']:.1f} | {cur['rps']:.1f} "
                     f"| {cur['p95_ms']:.2f} "
                     f"| {cur.get('rejected_attempts', 0)} |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def write_serve_step_summary(
    committed: dict, fresh: dict, failures: list[str], min_speedup: float
) -> None:
    """Append the serve-gate verdict to the GitHub Actions job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Serve gate", ""]
    if failures:
        lines.append(f"**REGRESSION** — {len(failures)} serve metric(s) "
                     f"out of bounds:")
        lines.append("")
        lines.extend(f"- {f}" for f in failures)
    else:
        speedups = ", ".join(
            f"{k}={v:.2f}x" for k, v in sorted(
                fresh.get("speedup_c64", {}).items())
        )
        lines.append(f"**OK** — cells within tolerance; 64-client "
                     f"micro-batch speedup {speedups} "
                     f"(floor {min_speedup:.1f}x).")
    lines += ["", "| cell | committed req/s | fresh req/s | fresh p95 ms |",
              "|---|---:|---:|---:|"]
    for cell in _SERVE_CELLS:
        ref = committed["current"].get(cell)
        cur = fresh["current"].get(cell)
        if not ref or not cur:
            continue
        lines.append(f"| {cell} | {ref['rps']:.1f} | {cur['rps']:.1f} "
                     f"| {cur['p95_ms']:.3f} |")
    if fresh.get("codec_batch"):
        lines += ["", "| codec | batch | compress | decompress | "
                      "roundtrip (gated) |", "|---|---:|---:|---:|---:|"]
        for codec, cell in sorted(fresh["codec_batch"].items()):
            lines.append(f"| {codec} | {cell.get('batch')} "
                         f"| {cell.get('compress_speedup', 0.0):.2f}x "
                         f"| {cell.get('decompress_speedup', 0.0):.2f}x "
                         f"| {cell.get('roundtrip_speedup', 0.0):.2f}x |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def write_step_summary(
    committed: dict, fresh: dict, failures: list[str], tolerance: float
) -> None:
    """Append a Markdown verdict to the GitHub Actions job summary.

    No-op outside Actions (``GITHUB_STEP_SUMMARY`` unset), so local runs
    behave identically.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Perf gate", ""]
    if failures:
        lines.append(f"**REGRESSION** — {len(failures)} metric(s) below "
                     f"the {tolerance:.0%}-tolerance floor:")
        lines.append("")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append(f"**OK** — every codec within {tolerance:.0%} of the "
                     f"committed record.")
    lines += ["", "| codec | metric | committed MB/s | fresh MB/s | delta |",
              "|---|---|---:|---:|---:|"]
    for codec in _CODECS:
        ref, cur = committed["current"].get(codec), fresh["current"].get(codec)
        if not ref or not cur:
            continue
        for metric in _METRICS:
            delta = 100.0 * (cur[metric] / ref[metric] - 1.0)
            lines.append(f"| {codec} | {metric} | {ref[metric]:.2f} "
                         f"| {cur[metric]:.2f} | {delta:+.1f}% |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--committed", type=pathlib.Path, default=COMMITTED,
                    help="committed reference record")
    ap.add_argument("--fresh", type=pathlib.Path, default=None,
                    help="pre-computed fresh record (skip re-measurement)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--smoke", action="store_true",
                    help="1 timing rep when re-measuring")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--serve-fresh", type=pathlib.Path, default=None,
                    help="fresh BENCH_serve record to gate (from "
                         "benchmarks/bench_serve.py)")
    ap.add_argument("--serve-committed", type=pathlib.Path,
                    default=SERVE_COMMITTED,
                    help="committed serve reference record")
    ap.add_argument("--serve-min-speedup", type=float, default=2.0,
                    help="required 64-client micro-batch speedup over "
                         "single-shot (default 2.0)")
    ap.add_argument("--codec-batch-min", type=float, default=2.0,
                    help="required per-codec direct batch-vs-single "
                         "speedup, both directions (default 2.0)")
    ap.add_argument("--cluster-fresh", type=pathlib.Path, default=None,
                    help="fresh BENCH_cluster record to gate (from "
                         "benchmarks/bench_cluster.py)")
    ap.add_argument("--cluster-committed", type=pathlib.Path,
                    default=CLUSTER_COMMITTED,
                    help="committed cluster reference record")
    ap.add_argument("--cluster-scaling-min", type=float, default=1.6,
                    help="required fresh 4-shard-over-1-shard goodput "
                         "scaling (default 1.6)")
    ap.add_argument("--tune-fresh", type=pathlib.Path, default=None,
                    help="fresh BENCH_tune record to gate (from "
                         "benchmarks/bench_tune.py)")
    ap.add_argument("--tune-committed", type=pathlib.Path,
                    default=TUNE_COMMITTED,
                    help="committed tune reference record")
    ap.add_argument("--tune-min-speedup", type=float, default=1.0,
                    help="required tuned-over-default speedup on every "
                         "tuning cell (default 1.0: never lose)")
    ap.add_argument("--tune-min-winning", type=int, default=2,
                    help="required count of cells strictly faster than "
                         "the defaults (default 2)")
    args = ap.parse_args(argv)

    if os.environ.get("HPDR_SAN", "") not in ("", "0"):
        print("perf_gate: SKIP — HPDR_SAN is set; sanitized runs measure "
              "the sanitizer, not the codecs (unset HPDR_SAN to gate perf)")
        return 0

    if not args.committed.exists():
        print(f"perf_gate: no committed record at {args.committed}; "
              f"run benchmarks/bench_wallclock.py first", file=sys.stderr)
        return 0 if args.report_only else 2

    committed = json.loads(args.committed.read_text())
    if args.fresh is not None:
        fresh = json.loads(args.fresh.read_text())
    else:
        from repro.bench.wallclock import measure_all

        fresh = measure_all(reps=1 if args.smoke else 3)

    try:
        print(f"{'codec':<16} {'metric':<16} {'committed':>10} {'fresh':>10}")
        for codec in _CODECS:
            ref = _section(committed, "current",
                           "committed record").get(codec)
            cur = _section(fresh, "current", "fresh record").get(codec)
            if not ref or not cur:
                continue
            for metric in _METRICS:
                print(f"{codec:<16} {metric:<16} "
                      f"{_fmt(ref, metric):>10} {_fmt(cur, metric):>10}")

        failures = compare(committed, fresh, args.tolerance)
        write_step_summary(committed, fresh, failures, args.tolerance)

        if args.serve_fresh is not None:
            if not args.serve_committed.exists():
                print(f"perf_gate: no committed serve record at "
                      f"{args.serve_committed}; run benchmarks/bench_serve.py "
                      f"first", file=sys.stderr)
                return 0 if args.report_only else 2
            serve_committed = json.loads(args.serve_committed.read_text())
            serve_fresh = json.loads(args.serve_fresh.read_text())
            serve_failures = compare_serve(
                serve_committed, serve_fresh, args.tolerance,
                args.serve_min_speedup, args.codec_batch_min,
            )
            print(f"\n{'serve cell':<16} {'committed rps':>14} "
                  f"{'fresh rps':>10}")
            for cell in _SERVE_CELLS:
                ref = serve_committed["current"].get(cell)
                cur = serve_fresh["current"].get(cell)
                if not ref or not cur:
                    continue
                print(f"{cell:<16} {_fmt(ref, 'rps', 1):>14} "
                      f"{_fmt(cur, 'rps', 1):>10}")
            for name, s in sorted(serve_fresh.get("speedup_c64", {}).items()):
                print(f"speedup_c64.{name:<4} {s:>10.2f}x "
                      f"(floor {args.serve_min_speedup:.1f}x)")
            for codec, cell in sorted(
                    serve_fresh.get("codec_batch", {}).items()):
                print(f"codec_batch.{codec:<12} "
                      f"compress {cell.get('compress_speedup', 0.0):>7.2f}x  "
                      f"decompress "
                      f"{cell.get('decompress_speedup', 0.0):>7.2f}x  "
                      f"roundtrip {cell.get('roundtrip_speedup', 0.0):>7.2f}x "
                      f"(floor {args.codec_batch_min:.1f}x on roundtrip, "
                      f"n={cell.get('batch')})")
            write_serve_step_summary(
                serve_committed, serve_fresh, serve_failures,
                args.serve_min_speedup,
            )
            failures += serve_failures

        if args.cluster_fresh is not None:
            if not args.cluster_committed.exists():
                print(f"perf_gate: no committed cluster record at "
                      f"{args.cluster_committed}; run "
                      f"benchmarks/bench_cluster.py first", file=sys.stderr)
                return 0 if args.report_only else 2
            cluster_committed = json.loads(args.cluster_committed.read_text())
            cluster_fresh = json.loads(args.cluster_fresh.read_text())
            cluster_failures = compare_cluster(
                cluster_committed, cluster_fresh, args.tolerance,
                args.cluster_scaling_min,
            )
            print(f"\n{'cluster cell':<16} {'committed rps':>14} "
                  f"{'fresh rps':>10}")
            for cell in _CLUSTER_CELLS:
                ref = cluster_committed["current"].get(cell)
                cur = cluster_fresh["current"].get(cell)
                if not ref or not cur:
                    continue
                print(f"{cell:<16} {_fmt(ref, 'rps', 1):>14} "
                      f"{_fmt(cur, 'rps', 1):>10}")
            for name, s in sorted(
                    cluster_fresh.get("scaling", {}).items()):
                floor = (f" (floor {args.cluster_scaling_min:.1f}x)"
                         if name == "s4_over_s1" else "")
                print(f"scaling.{name:<12} {s:>8.2f}x{floor}")
            write_cluster_step_summary(
                cluster_committed, cluster_fresh, cluster_failures,
                args.cluster_scaling_min,
            )
            failures += cluster_failures

        if args.tune_fresh is not None:
            if not args.tune_committed.exists():
                print(f"perf_gate: no committed tune record at "
                      f"{args.tune_committed}; run benchmarks/bench_tune.py "
                      f"first", file=sys.stderr)
                return 0 if args.report_only else 2
            tune_committed = json.loads(args.tune_committed.read_text())
            tune_fresh = json.loads(args.tune_fresh.read_text())
            tune_failures = compare_tune(
                tune_committed, tune_fresh, args.tune_min_speedup,
                args.tune_min_winning,
            )
            print(f"\n{'tune cell':<20} {'default s':>10} {'tuned s':>10} "
                  f"{'speedup':>8}")
            for cell, row in sorted(tune_fresh.get("current", {}).items()):
                if not isinstance(row, dict):
                    continue
                print(f"{cell:<20} {_fmt(row, 'default_s', 4):>10} "
                      f"{_fmt(row, 'tuned_s', 4):>10} "
                      f"{_fmt(row, 'speedup', 3):>7}x")
            write_tune_step_summary(
                tune_fresh, tune_failures, args.tune_min_speedup,
            )
            failures += tune_failures
    except MissingBenchCell as exc:
        print(f"perf_gate: MALFORMED RECORD — {exc}", file=sys.stderr)
        return 0 if args.report_only else 2

    if failures:
        print("\nperf_gate: REGRESSION" + (" (report-only)" if args.report_only else ""))
        for line in failures:
            print(f"  {line}")
        return 0 if args.report_only else 1
    print(f"\nperf_gate: OK (within {args.tolerance:.0%} of committed record)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
